// Tests for the hardened execution layer (DESIGN.md §10): the Status
// taxonomy, ExecBudget deadlines/cancellation, deterministic fault
// injection, budget-aware ESPRESSO/SAT, the run_flow degradation ladder
// and the parser-hardening regressions backed by fuzz/corpus/.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hpp"
#include "espresso/espresso.hpp"
#include "exec/budget.hpp"
#include "exec/fault.hpp"
#include "exec/status.hpp"
#include "flow/synthesis_flow.hpp"
#include "io/aiger.hpp"
#include "io/blif_reader.hpp"
#include "obs/json.hpp"
#include "pla/pla_io.hpp"
#include "sat/solver.hpp"
#include "tt/incomplete_spec.hpp"

namespace {

using namespace rdc;

/// Restores a clean fault configuration even when a test fails mid-way.
struct FaultSpecGuard {
  explicit FaultSpecGuard(const std::string& spec) {
    exec::testing::set_fault_spec(spec);
  }
  ~FaultSpecGuard() { exec::testing::set_fault_spec(""); }
};

IncompleteSpec small_spec() {
  // 4-input single-output function with a DC band: enough structure for
  // every flow rung to do real work, small enough to stay instant.
  IncompleteSpec spec("exec_test", 4, 1);
  TernaryTruthTable& f = spec.output(0);
  for (std::uint32_t m = 0; m < f.size(); ++m) {
    if (m % 3 == 0)
      f.set_phase(m, Phase::kOne);
    else if (m % 3 == 1)
      f.set_phase(m, Phase::kDc);
  }
  return spec;
}

// --- Status taxonomy -----------------------------------------------------

TEST(ExecStatus, DefaultIsOkAndToStringIsStable) {
  exec::Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "OK");

  exec::Status s(exec::StatusCode::kDeadlineExceeded, "budget expired");
  s.with_context("espresso").with_context("flow");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.to_string(),
            "DEADLINE_EXCEEDED: flow: espresso: budget expired");
}

TEST(ExecStatus, CodeNamesAreUpperSnake) {
  EXPECT_STREQ(exec::status_code_name(exec::StatusCode::kOk), "OK");
  EXPECT_STREQ(exec::status_code_name(exec::StatusCode::kParseError),
               "PARSE_ERROR");
  EXPECT_STREQ(exec::status_code_name(exec::StatusCode::kFaultInjected),
               "FAULT_INJECTED");
  EXPECT_STREQ(exec::status_code_name(exec::StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
}

TEST(ExecStatus, FromCurrentExceptionClassifies) {
  const auto classify = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return exec::status_from_current_exception();
    }
    return exec::Status();
  };
  EXPECT_EQ(classify([] { throw std::runtime_error("pla line 3: bad"); })
                .code(),
            exec::StatusCode::kParseError);
  EXPECT_EQ(classify([] { throw std::runtime_error("blif line 1: x"); })
                .code(),
            exec::StatusCode::kParseError);
  EXPECT_EQ(classify([] { throw std::runtime_error("aiger: negative"); })
                .code(),
            exec::StatusCode::kParseError);
  EXPECT_EQ(
      classify([] { throw std::runtime_error("cannot open /nope"); }).code(),
      exec::StatusCode::kUnavailable);
  EXPECT_EQ(classify([] { throw std::invalid_argument("bad cube"); }).code(),
            exec::StatusCode::kInvalidArgument);
  EXPECT_EQ(classify([] { throw 42; }).code(), exec::StatusCode::kInternal);

  // StatusError round-trips its payload losslessly.
  const exec::Status original(exec::StatusCode::kCancelled, "stop");
  const exec::Status recovered =
      classify([&] { throw exec::StatusError(original); });
  EXPECT_EQ(recovered, original);
}

TEST(ExecStatus, CaptureReturnsValueOrStatus) {
  const exec::Result<int> good = exec::capture([] { return 7; });
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  const exec::Result<int> bad = exec::capture(
      []() -> int { throw exec::StatusError({exec::StatusCode::kCancelled,
                                             "nope"}); });
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), exec::StatusCode::kCancelled);
}

// --- ExecBudget ----------------------------------------------------------

TEST(ExecBudget, UnlimitedNeverTrips) {
  exec::ExecBudget budget;
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(budget.check().ok());
}

TEST(ExecBudget, ExpiredDeadlineTripsSticky) {
  exec::ExecBudget budget = exec::ExecBudget::with_deadline_ms(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // check() strides the clock read; poll enough to guarantee one.
  exec::Status status;
  for (int i = 0; i < 256 && status.ok(); ++i) status = budget.check();
  EXPECT_EQ(status.code(), exec::StatusCode::kDeadlineExceeded);
  // Sticky: the very next check fails immediately with the same code.
  EXPECT_EQ(budget.check().code(), exec::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(budget.tripped());
}

TEST(ExecBudget, CancellationObservedByCheck) {
  exec::ExecBudget budget;
  EXPECT_TRUE(budget.check().ok());
  budget.request_cancel();
  EXPECT_EQ(budget.check().code(), exec::StatusCode::kCancelled);
  EXPECT_EQ(budget.check_now().code(), exec::StatusCode::kCancelled);
}

TEST(ExecBudget, CheckpointIsNoOpWithoutBudget) {
  EXPECT_EQ(exec::current_budget(), nullptr);
  EXPECT_NO_THROW(exec::checkpoint());
  EXPECT_TRUE(exec::checkpoint_status().ok());
}

TEST(ExecBudget, ScopeInstallsAndMasks) {
  exec::ExecBudget budget;
  {
    exec::BudgetScope scope(&budget);
    EXPECT_EQ(exec::current_budget(), &budget);
    {
      exec::BudgetScope mask(nullptr);  // the fallback rung's escape hatch
      EXPECT_EQ(exec::current_budget(), nullptr);
      EXPECT_NO_THROW(exec::checkpoint());
    }
    EXPECT_EQ(exec::current_budget(), &budget);
  }
  EXPECT_EQ(exec::current_budget(), nullptr);
}

TEST(ExecBudget, IterationCapTrips) {
  exec::BudgetLimits limits;
  limits.max_checkpoints = 100;
  exec::ExecBudget budget(limits);
  exec::Status status;
  for (int i = 0; i < 200 && status.ok(); ++i) status = budget.check();
  EXPECT_EQ(status.code(), exec::StatusCode::kResourceExhausted);
}

// --- parallel_for cancellation and error propagation ---------------------

TEST(ExecBudget, ParallelForCancellationIsPrompt) {
  // A pre-cancelled budget must stop an 8-thread fan-out of slow tasks
  // almost immediately: workers poll before each index, so only in-flight
  // tasks (one 1 ms sleep per worker at worst) can linger.
  ThreadPool pool(8);
  exec::ExecBudget budget;
  budget.request_cancel();
  exec::BudgetScope scope(&budget);

  const auto start = std::chrono::steady_clock::now();
  try {
    pool.parallel_for(0, 10000, [&](std::uint64_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    FAIL() << "expected StatusError";
  } catch (const exec::StatusError& error) {
    EXPECT_EQ(error.status().code(), exec::StatusCode::kCancelled);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 50);
}

TEST(ExecBudget, EspressoBoundedSalvagesPartialResult) {
  // An already-expired deadline: minimize_bounded must not throw, and must
  // still hand back a valid cover of the on-set (the degradation
  // contract), flagged partial with the deadline code.
  const IncompleteSpec spec = small_spec();
  exec::ExecBudget budget = exec::ExecBudget::with_deadline_ms(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  exec::BudgetScope scope(&budget);

  const EspressoResult result = minimize_bounded(spec.output(0));
  EXPECT_TRUE(result.partial);
  EXPECT_EQ(result.status.code(), exec::StatusCode::kDeadlineExceeded);
  // Salvaged cover still covers every ON minterm and no OFF minterm.
  const TernaryTruthTable& f = spec.output(0);
  for (std::uint32_t m = 0; m < f.size(); ++m) {
    if (f.phase(m) == Phase::kOne)
      EXPECT_TRUE(result.cover.covers_minterm(m)) << "minterm " << m;
    if (f.phase(m) == Phase::kZero)
      EXPECT_FALSE(result.cover.covers_minterm(m)) << "minterm " << m;
  }
}

// --- SAT budget ----------------------------------------------------------

TEST(ExecSat, SolverReturnsUnknownOnTrippedBudget) {
  // x1 != x2 (satisfiable) — trivial, but the entry check_now fires first.
  sat::Solver solver;
  const unsigned x1 = solver.new_var();
  const unsigned x2 = solver.new_var();
  solver.add_clause({sat::Lit(x1, false), sat::Lit(x2, false)});
  solver.add_clause({sat::Lit(x1, true), sat::Lit(x2, true)});

  exec::ExecBudget budget;
  budget.request_cancel();
  solver.set_budget(&budget);
  EXPECT_EQ(solver.solve(), sat::SolveResult::kUnknown);
  EXPECT_EQ(solver.last_status().code(), exec::StatusCode::kCancelled);

  // The solver stays usable once the budget is lifted.
  solver.set_budget(nullptr);
  EXPECT_EQ(solver.solve(), sat::SolveResult::kSat);
  EXPECT_TRUE(solver.last_status().ok());
}

// --- fault injection -----------------------------------------------------

TEST(ExecFault, NthHitTriggersAndLaterHitsKeepFailing) {
  FaultSpecGuard guard("espresso:2");
  const IncompleteSpec spec = small_spec();
  EXPECT_NO_THROW(minimize(spec.output(0)));  // hit 1: below trigger
  for (int i = 0; i < 2; ++i) {
    try {
      minimize(spec.output(0));  // hits 2, 3: at/after trigger
      FAIL() << "expected StatusError";
    } catch (const exec::StatusError& error) {
      EXPECT_EQ(error.status().code(), exec::StatusCode::kFaultInjected);
    }
  }
}

TEST(ExecFault, DisarmedSitesAreFree) {
  FaultSpecGuard guard("");
  EXPECT_FALSE(exec::faults_armed());
  EXPECT_NO_THROW(exec::fault_point("espresso"));
  EXPECT_NO_THROW(exec::fault_point("no.such.site"));
}

// --- run_flow degradation ladder -----------------------------------------

TEST(ExecFlow, NoBudgetRunsAtFullQuality) {
  const FlowResult result = run_flow(small_spec(), DcPolicy::kLcfThreshold);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.degradation, DegradationLevel::kNone);
  EXPECT_GT(result.netlist.gate_count(), 0u);
}

TEST(ExecFlow, ExactFaultDescendsToHeuristic) {
  FaultSpecGuard guard("flow.exact:1");
  const FlowResult result = run_flow(small_spec(), DcPolicy::kLcfThreshold);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.degradation, DegradationLevel::kHeuristic);
  EXPECT_GT(result.netlist.gate_count(), 0u);
}

TEST(ExecFlow, EspressoFaultDescendsToConventional) {
  // "espresso:1" fails every minimization, so both the exact and the
  // heuristic rung die; the conventional fallback avoids ESPRESSO and
  // must still deliver a netlist.
  FaultSpecGuard guard("espresso:1");
  const FlowResult result = run_flow(small_spec(), DcPolicy::kLcfThreshold);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.degradation, DegradationLevel::kConventional);
  EXPECT_GT(result.netlist.gate_count(), 0u);
  // The degraded implementation is still a correct completion of the
  // spec: every specified minterm keeps its phase.
  const IncompleteSpec spec = small_spec();
  const TernaryTruthTable& f = spec.output(0);
  const TernaryTruthTable& g = result.implementation.output(0);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    if (f.phase(m) != Phase::kDc) EXPECT_EQ(g.phase(m), f.phase(m));
}

TEST(ExecFlow, AllRungsFailingYieldsPartial) {
  FaultSpecGuard guard("espresso:1,flow.conventional:1");
  const FlowResult result = run_flow(small_spec(), DcPolicy::kLcfThreshold);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), exec::StatusCode::kFaultInjected);
  EXPECT_EQ(result.degradation, DegradationLevel::kPartial);
}

TEST(ExecFlow, CancelledBudgetSkipsStraightToPartial) {
  // Cancellation means "stop", not "try cheaper": no rung may run.
  exec::ExecBudget budget;
  budget.request_cancel();
  FlowOptions options;
  options.budget = &budget;
  const FlowResult result =
      run_flow(small_spec(), DcPolicy::kLcfThreshold, options);
  EXPECT_EQ(result.status.code(), exec::StatusCode::kCancelled);
  EXPECT_EQ(result.degradation, DegradationLevel::kPartial);
}

TEST(ExecFlow, ExpiredDeadlineStillProducesNetlistAndValidReport) {
  // The acceptance scenario: a budget that expires immediately must still
  // come back with a conventional-rung netlist, never a throw, and the
  // FlowReport must be valid JSON carrying the §10 schema additions.
  exec::ExecBudget budget = exec::ExecBudget::with_deadline_ms(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  FlowOptions options;
  options.budget = &budget;
  const FlowResult result =
      run_flow(small_spec(), DcPolicy::kLcfThreshold, options);

  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.degradation, DegradationLevel::kConventional);
  EXPECT_GT(result.netlist.gate_count(), 0u);

  const std::string json = result.report.to_json();
  std::string error;
  const auto parsed = obs::parse_json(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const obs::JsonValue* metrics = parsed->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::JsonValue* degradation = metrics->find("degradation");
  ASSERT_NE(degradation, nullptr);
  EXPECT_EQ(degradation->string, "conventional");
  const obs::JsonValue* level = metrics->find("degradation_level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->number, 2.0);
  EXPECT_NE(metrics->find("degraded_reason"), nullptr);
  const obs::JsonValue* status = metrics->find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->string, "OK");
}

TEST(ExecFlow, DegradationLevelNamesAreStable) {
  EXPECT_STREQ(degradation_level_name(DegradationLevel::kNone), "none");
  EXPECT_STREQ(degradation_level_name(DegradationLevel::kHeuristic),
               "heuristic");
  EXPECT_STREQ(degradation_level_name(DegradationLevel::kConventional),
               "conventional");
  EXPECT_STREQ(degradation_level_name(DegradationLevel::kPartial),
               "partial");
}

// --- parser hardening regressions (mirrored in fuzz/corpus/) -------------

TEST(ExecParserHardening, PlaHugeOutputHeaderIsParseError) {
  EXPECT_THROW(parse_pla_string(".i 2\n.o 4000000000\n11 1\n.e\n", "t"),
               std::runtime_error);
}

TEST(ExecParserHardening, PlaGeometryChangeAfterRowsIsParseError) {
  EXPECT_THROW(
      parse_pla_string(".i 2\n.o 1\n11 1\n.i 3\n111 1\n.e\n", "t"),
      std::runtime_error);
}

TEST(ExecParserHardening, BlifDuplicateInputIsParseError) {
  EXPECT_THROW(
      parse_blif_string(".model m\n.inputs a a\n.outputs y\n"
                        ".names a y\n1 1\n.end\n"),
      std::runtime_error);
}

TEST(ExecParserHardening, BlifInputShadowingTableIsParseError) {
  EXPECT_THROW(
      parse_blif_string(".model m\n.inputs a b\n.outputs y\n"
                        ".names b a\n1 1\n.names a y\n1 1\n.end\n"),
      std::runtime_error);
}

TEST(ExecParserHardening, BlifBadCubeCharacterCarriesLineNumber) {
  try {
    parse_blif_string(".model m\n.inputs a b\n.outputs y\n"
                      ".names a b y\n1X 1\n.end\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("blif line 4"),
              std::string::npos)
        << error.what();
  }
}

TEST(ExecParserHardening, AigerNegativeCountIsParseError) {
  EXPECT_THROW(parse_aiger_string("aag 3 2 0 -1 1\n2\n4\n6\n6 4 2\n"),
               std::runtime_error);
  EXPECT_THROW(parse_aiger_string("aag 3 2 0 1 1\n2\n4\n-6\n6 4 2\n"),
               std::runtime_error);
}

TEST(ExecParserHardening, AigerHugeHeaderIsParseErrorNotOom) {
  EXPECT_THROW(
      parse_aiger_string("aag 99999999999 2 0 1 1\n2\n4\n6\n6 4 2\n"),
      std::runtime_error);
}

TEST(ExecParserHardening, JsonDeepNestingIsErrorNotStackOverflow) {
  const std::string bomb(4000, '[');
  std::string error;
  EXPECT_FALSE(obs::parse_json(bomb, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
  // 100 levels is fine (cap is 128).
  const std::string deep_ok =
      std::string(100, '[') + "1" + std::string(100, ']');
  EXPECT_TRUE(obs::parse_json(deep_ok, &error).has_value()) << error;
}

}  // namespace
