#include "bdd/reorder.hpp"

#include <numeric>
#include <stdexcept>

namespace rdc {

BddEdge swap_variables(BddManager& mgr, BddEdge f, unsigned i, unsigned j) {
  if (i == j) return f;
  // f'(.., x_i = a, .., x_j = b, ..) = f(.., x_i = b, .., x_j = a, ..).
  const BddEdge f00 = mgr.restrict_var(mgr.restrict_var(f, i, false), j, false);
  const BddEdge f01 = mgr.restrict_var(mgr.restrict_var(f, i, false), j, true);
  const BddEdge f10 = mgr.restrict_var(mgr.restrict_var(f, i, true), j, false);
  const BddEdge f11 = mgr.restrict_var(mgr.restrict_var(f, i, true), j, true);
  // f'|i=1,j=1 = f11; f'|i=1,j=0 = f01; f'|i=0,j=1 = f10; f'|i=0,j=0 = f00.
  return mgr.ite(mgr.var(i), mgr.ite(mgr.var(j), f11, f01),
                 mgr.ite(mgr.var(j), f10, f00));
}

BddEdge permute_variables(BddManager& mgr, BddEdge f,
                          const std::vector<unsigned>& perm) {
  const unsigned n = mgr.num_vars();
  if (perm.size() != n)
    throw std::invalid_argument("permute_variables: wrong permutation size");
  // Decompose into transpositions by selection placement: at[i] tracks the
  // original variable whose role currently sits at index i, cur[v] its
  // inverse.
  std::vector<unsigned> inverse(n);
  for (unsigned v = 0; v < n; ++v) {
    if (perm[v] >= n)
      throw std::invalid_argument("permute_variables: index out of range");
    inverse[perm[v]] = v;
  }
  std::vector<unsigned> at(n);
  std::vector<unsigned> cur(n);
  std::iota(at.begin(), at.end(), 0u);
  std::iota(cur.begin(), cur.end(), 0u);

  BddEdge result = f;
  for (unsigned target = 0; target < n; ++target) {
    const unsigned wanted = inverse[target];
    if (at[target] == wanted) continue;
    const unsigned idx = cur[wanted];
    result = swap_variables(mgr, result, target, idx);
    const unsigned displaced = at[target];
    at[target] = wanted;
    at[idx] = displaced;
    cur[wanted] = target;
    cur[displaced] = idx;
  }
  return result;
}

ReorderResult reduce_nodes_greedy(BddManager& mgr, BddEdge f,
                                  unsigned max_passes) {
  ReorderResult result;
  result.function = f;
  result.permutation.resize(mgr.num_vars());
  std::iota(result.permutation.begin(), result.permutation.end(), 0u);
  result.nodes_before = mgr.node_count(f);

  std::size_t current = result.nodes_before;
  for (unsigned pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (unsigned v = 0; v + 1 < mgr.num_vars(); ++v) {
      const BddEdge candidate =
          swap_variables(mgr, result.function, v, v + 1);
      const std::size_t count = mgr.node_count(candidate);
      if (count < current) {
        current = count;
        result.function = candidate;
        // The roles of positions v and v+1 exchanged: update the
        // permutation (old variable -> current position).
        for (auto& p : result.permutation) {
          if (p == v)
            p = v + 1;
          else if (p == v + 1)
            p = v;
        }
        improved = true;
      }
    }
    if (!improved) break;
  }
  result.nodes_after = current;
  return result;
}

}  // namespace rdc
