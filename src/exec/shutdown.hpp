// Cooperative SIGINT/SIGTERM handling (DESIGN.md §14).
//
// install_shutdown_handlers() replaces the default die-immediately
// disposition with a handler that records the signal in a sig_atomic_t
// flag; pollers (the batch supervisor's event loop, the metrics
// snapshotter thread) observe it and perform an orderly teardown: kill
// in-flight workers, flush the final rdc.metrics.v1 snapshot, append a
// terminating rdc.events.v1 record.
//
// Ownership decides who completes the shutdown. A driver that calls
// claim_shutdown_ownership() (rdc_batch) handles the exit itself —
// journal flushed, partial report written, a documented exit code. When
// nobody owns it, the snapshotter performs the telemetry flush and then
// re-raises the signal with the default disposition restored, so the
// process still dies with the conventional 128+N status and the parent
// shell sees an interrupt, not a success.
//
// Only install the handlers when something polls the flag: a handler
// with no poller would turn Ctrl-C into a no-op.
#pragma once

namespace rdc::exec {

/// Installs the SIGINT/SIGTERM flag handlers (idempotent, async-safe
/// handler body). No-op on platforms without those signals.
void install_shutdown_handlers();

/// True once a shutdown signal has been received.
bool shutdown_requested();

/// The received signal number (SIGINT/SIGTERM), or 0 when none yet.
int shutdown_signal();

/// Marks a driver as the shutdown owner: background pollers flush their
/// own telemetry but must not re-raise; the driver controls the exit.
void claim_shutdown_ownership();
bool shutdown_owned();

/// Restores the default disposition for the received signal and
/// re-raises it (process-terminating when a signal was in fact
/// received; plain return otherwise).
void reraise_shutdown_signal();

namespace testing {

/// Clears the recorded signal and ownership (between tests).
void reset_shutdown();

/// Records `sig` as if the handler had run (no actual signal delivery).
void simulate_shutdown(int sig);

}  // namespace testing

}  // namespace rdc::exec
