// SAT-based combinational equivalence checking (miter construction).
//
// The exhaustive simulators top out at 20 inputs; the SAT path proves
// equivalence (or produces a counterexample vector) independent of input
// count, which is how the flow's output-preserving passes are verified at
// scale.
#pragma once

#include <cstdint>
#include <optional>

#include "aig/aig.hpp"
#include "exec/status.hpp"

namespace rdc {

struct EquivalenceResult {
  bool equivalent = false;
  /// A distinguishing input vector when not equivalent (bit i = input i).
  std::uint32_t counterexample = 0;
  /// Output index that differs on the counterexample.
  unsigned failing_output = 0;
  /// OK for a decided query. When the exec budget cut the solve short the
  /// query is UNDECIDED: equivalent stays false (fail safe — callers must
  /// not certify a pass on a timed-out check) and this carries the code.
  exec::Status status;
};

/// Checks that two AIGs with identical interfaces compute the same outputs.
EquivalenceResult check_equivalence(const Aig& a, const Aig& b);

/// Checks one output pair only.
EquivalenceResult check_output_equivalence(const Aig& a, const Aig& b,
                                           unsigned output);

}  // namespace rdc
