// Unit and property tests for the BDD manager, cross-checked against
// explicit truth tables.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/bdd_ops.hpp"
#include "common/rng.hpp"
#include "reliability/complexity.hpp"
#include "reliability/error_rate.hpp"
#include "reliability/estimates.hpp"

namespace rdc {
namespace {

TernaryTruthTable random_ternary(unsigned n, Rng& rng) {
  TernaryTruthTable f(n);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    f.set_phase(m, static_cast<Phase>(rng.below(3)));
  return f;
}

TEST(Bdd, ConstantsAndVars) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.one(), !mgr.zero());
  EXPECT_EQ(mgr.sat_count(mgr.one()), 8.0);
  EXPECT_EQ(mgr.sat_count(mgr.zero()), 0.0);
  for (unsigned v = 0; v < 3; ++v) {
    EXPECT_EQ(mgr.sat_count(mgr.var(v)), 4.0);
    EXPECT_TRUE(mgr.evaluate(mgr.var(v), 1u << v));
    EXPECT_FALSE(mgr.evaluate(mgr.var(v), 0));
  }
}

TEST(Bdd, BasicConnectives) {
  BddManager mgr(2);
  const BddEdge a = mgr.var(0);
  const BddEdge b = mgr.var(1);
  const BddEdge f_and = mgr.bdd_and(a, b);
  const BddEdge f_or = mgr.bdd_or(a, b);
  const BddEdge f_xor = mgr.bdd_xor(a, b);
  for (std::uint32_t m = 0; m < 4; ++m) {
    const bool va = m & 1, vb = (m >> 1) & 1;
    EXPECT_EQ(mgr.evaluate(f_and, m), va && vb);
    EXPECT_EQ(mgr.evaluate(f_or, m), va || vb);
    EXPECT_EQ(mgr.evaluate(f_xor, m), va != vb);
  }
}

TEST(Bdd, IteIsCanonical) {
  BddManager mgr(3);
  const BddEdge a = mgr.var(0);
  const BddEdge b = mgr.var(1);
  // a & b built two different ways must be the same edge.
  const BddEdge x = mgr.bdd_and(a, b);
  const BddEdge y = mgr.ite(a, b, mgr.zero());
  EXPECT_EQ(x, y);
  // De Morgan as edges.
  EXPECT_EQ(!mgr.bdd_or(a, b), mgr.bdd_and(!a, !b));
}

TEST(Bdd, CofactorBehaves) {
  BddManager mgr(2);
  const BddEdge f = mgr.bdd_and(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.cofactor(f, 0, true), mgr.var(1));
  EXPECT_EQ(mgr.cofactor(f, 0, false), mgr.zero());
}

TEST(Bdd, FlipVarShiftsSet) {
  BddManager mgr(3);
  Rng rng(5);
  const TernaryTruthTable f = random_ternary(3, rng);
  const BddEdge on = mgr.from_phase(f, Phase::kOne);
  for (unsigned v = 0; v < 3; ++v) {
    const BddEdge shifted = mgr.flip_var(on, v);
    for (std::uint32_t m = 0; m < 8; ++m)
      EXPECT_EQ(mgr.evaluate(shifted, m), mgr.evaluate(on, flip_bit(m, v)));
    // Involutive.
    EXPECT_EQ(mgr.flip_var(shifted, v), on);
  }
}

TEST(Bdd, FromPhaseMatchesTruthTable) {
  Rng rng(17);
  for (unsigned n = 2; n <= 8; ++n) {
    BddManager mgr(n);
    const TernaryTruthTable f = random_ternary(n, rng);
    const SymbolicSpec sym = to_symbolic(mgr, f);
    for (std::uint32_t m = 0; m < f.size(); ++m) {
      EXPECT_EQ(mgr.evaluate(sym.on, m), f.is_on(m));
      EXPECT_EQ(mgr.evaluate(sym.dc, m), f.is_dc(m));
      EXPECT_EQ(mgr.evaluate(sym.off, m), f.is_off(m));
    }
    EXPECT_EQ(mgr.sat_count(sym.on), static_cast<double>(f.on_count()));
    EXPECT_EQ(mgr.sat_count(sym.dc), static_cast<double>(f.dc_count()));
  }
}

TEST(Bdd, NodeCountSharing) {
  BddManager mgr(4);
  // x0 & x1 & x2 & x3: chain of 4 internal nodes + terminal.
  BddEdge f = mgr.one();
  for (unsigned v = 0; v < 4; ++v) f = mgr.bdd_and(f, mgr.var(v));
  EXPECT_EQ(mgr.node_count(f), 5u);
}

TEST(BddOps, SymbolicComplexityMatchesEnumerative) {
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    const unsigned n = 4 + static_cast<unsigned>(trial);
    BddManager mgr(n);
    const TernaryTruthTable f = random_ternary(n, rng);
    const SymbolicSpec sym = to_symbolic(mgr, f);
    EXPECT_NEAR(symbolic_complexity_factor(mgr, sym), complexity_factor(f),
                1e-12);
  }
}

TEST(BddOps, SymbolicBordersMatchEnumerative) {
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    const unsigned n = 4 + static_cast<unsigned>(trial);
    BddManager mgr(n);
    const TernaryTruthTable f = random_ternary(n, rng);
    const SymbolicSpec sym = to_symbolic(mgr, f);
    const BorderCounts expected = count_borders(f);
    const BorderCounts got = symbolic_borders(mgr, sym);
    EXPECT_EQ(got.b0, expected.b0);
    EXPECT_EQ(got.b1, expected.b1);
    EXPECT_EQ(got.bdc, expected.bdc);
  }
}

TEST(BddOps, SymbolicBaseErrorMatchesEnumerative) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const unsigned n = 4 + static_cast<unsigned>(trial);
    BddManager mgr(n);
    const TernaryTruthTable f = random_ternary(n, rng);
    const SymbolicSpec sym = to_symbolic(mgr, f);
    const ErrorBounds bounds = exact_error_bounds(f);
    EXPECT_EQ(symbolic_base_error(mgr, sym),
              static_cast<double>(bounds.base_error));
  }
}

TEST(Bdd, RejectsBadVarCount) {
  EXPECT_THROW(BddManager(0), std::invalid_argument);
  EXPECT_THROW(BddManager(31), std::invalid_argument);
}

}  // namespace
}  // namespace rdc
