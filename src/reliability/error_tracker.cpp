#include "reliability/error_tracker.hpp"

#include <bit>
#include <stdexcept>

#include "common/simd.hpp"
#include "obs/counters.hpp"

namespace rdc {

ErrorRateTracker::ErrorRateTracker(const IncompleteSpec& spec)
    : num_inputs_(spec.num_inputs()), bound_(true) {
  outputs_.reserve(spec.num_outputs());
  for (const TernaryTruthTable& f : spec.outputs()) {
    OutputState state;
    state.care = f.care_bits();
    outputs_.push_back(std::move(state));
  }
}

void ErrorRateTracker::full_sync(OutputState& state, const BitVec& on) {
  obs::count(obs::Counter::kErrorTrackerSyncs);
  state.on = on;
  std::uint64_t propagating = 0;
  for (unsigned j = 0; j < num_inputs_; ++j)
    propagating += simd::popcount_shiftxor_and(on.data(), state.care.data(),
                                               on.num_words(), j);
  state.propagating = propagating;
  state.have_snapshot = true;
}

void ErrorRateTracker::reconcile(OutputState& state, const BitVec& on) {
  // Replays the flipped minterms one at a time against the snapshot: when
  // minterm m changes value, the propagation predicate value(m) != value(u)
  // toggles for each of its n neighbors u, so the 2n events (m, j) and
  // (u, j) flip between propagating and masked — weighted by which of the
  // two sources lies in the care set. Each flip's delta is evaluated on the
  // snapshot state with all earlier flips applied, which makes the replay
  // order-independent and exact.
  const unsigned n = num_inputs_;
  std::uint64_t propagating = state.propagating;
  BitVec& snapshot = state.on;
  const std::uint64_t* current = on.data();
  for (std::size_t w = 0; w < snapshot.num_words(); ++w) {
    std::uint64_t diff = snapshot.word(w) ^ current[w];
    while (diff != 0) {
      const unsigned tz = static_cast<unsigned>(std::countr_zero(diff));
      diff &= diff - 1;
      const auto m = static_cast<std::uint32_t>((w << 6) | tz);
      obs::count(obs::Counter::kErrorTrackerFlips);
      const bool value = snapshot.get(m);
      for (unsigned j = 0; j < n; ++j) {
        const std::uint32_t u = flip_bit(m, j);
        const auto weight =
            static_cast<std::uint64_t>(state.care.get(m)) + state.care.get(u);
        if (value != snapshot.get(u))
          propagating -= weight;
        else
          propagating += weight;
      }
      snapshot.set(m, !value);
    }
  }
  state.propagating = propagating;
}

double ErrorRateTracker::update(const IncompleteSpec& implementation) {
  if (!bound_)
    throw std::logic_error("ErrorRateTracker: update() before binding");
  if (implementation.num_outputs() != outputs_.size())
    throw std::invalid_argument("ErrorRateTracker: output count mismatch");

  double sum = 0.0;
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    const TernaryTruthTable& f = implementation.output(static_cast<unsigned>(o));
    if (f.num_inputs() != num_inputs_)
      throw std::invalid_argument("ErrorRateTracker: input count mismatch");
    if (!f.fully_specified())
      throw std::invalid_argument(
          "ErrorRateTracker: implementation must be completely specified");
    OutputState& state = outputs_[o];
    const BitVec& on = f.on_bits();
    if (!state.have_snapshot) {
      full_sync(state, on);
    } else {
      std::uint64_t flips = 0;
      const std::uint64_t* current = on.data();
      for (std::size_t w = 0; w < state.on.num_words(); ++w)
        flips += std::popcount(state.on.word(w) ^ current[w]);
      // A flip costs ~n bit probes, a resync ~n word-parallel passes over
      // all words: reconcile while the diff is smaller than the word count.
      if (flips > state.on.num_words())
        full_sync(state, on);
      else if (flips != 0)
        reconcile(state, on);
    }
    // Same normalization and summation order as exact_error_rate, so the
    // result is bit-identical to the full recompute.
    sum += static_cast<double>(state.propagating) /
           (static_cast<double>(num_inputs_) * static_cast<double>(f.size()));
  }
  rate_ = outputs_.empty() ? 0.0 : sum / static_cast<double>(outputs_.size());
  return rate_;
}

NeighborhoodTracker::NeighborhoodTracker(const TernaryTruthTable& f)
    : NeighborhoodTracker(f, NeighborTable(f)) {}

NeighborhoodTracker::NeighborhoodTracker(const TernaryTruthTable& f,
                                         const NeighborTable& table)
    : num_inputs_(f.num_inputs()), counts_(f.size()) {
  for (std::uint32_t m = 0; m < f.size(); ++m) counts_[m] = table.at(m);
}

}  // namespace rdc
