// Exact input-error-rate computation (Sections 2 and 5 of the paper).
//
// Error model: single-bit flips on input pins, all pins equally likely.
// An error event is an ordered pair (source minterm x, flipped pin j); the
// source must lie in the *care set of the original specification* — vectors
// from the DC space "can never occur in practice" (paper, Sec. 2.1). The
// event propagates at an output iff the implementation evaluates differently
// on x and x ^ (1 << j).
//
// All rates are normalized by n * 2^n (the number of possible events); the
// paper's headline numbers are ratios of such rates, so the normalization
// cancels there, and this choice makes the Section-5 closed forms for
// base/min-dc/max-dc error consistent with Table 3's magnitudes.
#pragma once

#include <cstdint>
#include <span>

#include "tt/incomplete_spec.hpp"
#include "tt/ternary_function.hpp"

namespace rdc {

/// Exact error rate of a completely specified implementation against the
/// care set of specification `spec`. Word-parallel: per pin j the
/// propagating sources are popcount((on ^ neighbor_j(on)) & care).
double exact_error_rate(const TernaryTruthTable& implementation,
                        const TernaryTruthTable& spec);

/// Scalar (one bit per lookup) reference implementation, kept for
/// differential testing and the kernel microbenchmarks.
double exact_error_rate_scalar(const TernaryTruthTable& implementation,
                               const TernaryTruthTable& spec);

/// Mean per-output exact error rate of a multi-output implementation.
double exact_error_rate(const IncompleteSpec& implementation,
                        const IncompleteSpec& spec);

/// Error rate under non-uniform pin failure probabilities: each event
/// (source, pin j) carries weight `pin_weights[j]`; the rate is the
/// weighted fraction of propagating events. Uniform weights reduce to
/// exact_error_rate. Weights must be non-negative with a positive sum.
double exact_error_rate_weighted(const TernaryTruthTable& implementation,
                                 const TernaryTruthTable& spec,
                                 std::span<const double> pin_weights);
double exact_error_rate_weighted(const IncompleteSpec& implementation,
                                 const IncompleteSpec& spec,
                                 std::span<const double> pin_weights);

/// Scalar reference for the weighted rate (differential testing).
double exact_error_rate_weighted_scalar(
    const TernaryTruthTable& implementation, const TernaryTruthTable& spec,
    std::span<const double> pin_weights);

/// Exact error-event decomposition of Section 5.
struct ErrorBounds {
  /// Events between care minterms of opposite phase (2x unordered pairs);
  /// independent of any DC assignment.
  std::uint64_t base_error = 0;
  /// Additional events under the reliability-optimal DC assignment.
  std::uint64_t min_dc_error = 0;
  /// Additional events under the reliability-worst DC assignment.
  std::uint64_t max_dc_error = 0;
  /// n * 2^n, the normalizer that turns the counts into rates.
  std::uint64_t total_events = 0;

  double min_rate() const {
    return static_cast<double>(base_error + min_dc_error) /
           static_cast<double>(total_events);
  }
  double max_rate() const {
    return static_cast<double>(base_error + max_dc_error) /
           static_cast<double>(total_events);
  }
};

/// Computes the exact min/max achievable error rates of an incompletely
/// specified function over all possible DC assignments.
ErrorBounds exact_error_bounds(const TernaryTruthTable& spec);

/// Mean per-output bounds, expressed as rates.
struct RateBounds {
  double min = 0.0;
  double max = 0.0;
};
RateBounds exact_error_bounds(const IncompleteSpec& spec);

}  // namespace rdc
