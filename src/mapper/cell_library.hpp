// Standard-cell library model (the 70 nm-class library of the paper's
// Design-Compiler flow, substituted by representative generic values).
//
// Delay uses a linear model: d = intrinsic + slope * load_capacitance.
// Power has a dynamic part (load + internal energy, weighted by exact
// switching activity) and a static leakage part.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rdc {

/// Logic function of a cell (evaluation is implemented per kind).
enum class CellKind : std::uint8_t {
  kInv,
  kBuf,
  kAnd2,
  kNand2,
  kOr2,
  kNor2,
  kAnd3,
  kNand3,
  kOr3,
  kNor3,
  kAnd4,
  kNand4,
  kAoi21,  ///< !(a*b + c)
  kOai21,  ///< !((a+b) * c)
  kAoi22,  ///< !(a*b + c*d)
  kOai22,  ///< !((a+b) * (c+d))
  kXor2,
  kXnor2,
  kTie0,  ///< constant 0 driver
  kTie1,  ///< constant 1 driver
};

struct Cell {
  CellKind kind;
  std::string name;
  unsigned num_inputs;
  double area;             ///< um^2
  double input_cap;        ///< fF, per input pin
  double intrinsic_delay;  ///< ps
  double load_slope;       ///< ps per fF of output load
  double leakage;          ///< nW
  double internal_energy;  ///< fJ per output transition
};

/// Evaluates the cell function on input values (size must match).
bool evaluate_cell(CellKind kind, std::span<const bool> inputs);

class CellLibrary {
 public:
  /// The built-in generic 70 nm-class library.
  static const CellLibrary& generic70();

  /// Builds a library from explicit cells (used by the Liberty parser).
  /// Throws std::invalid_argument if kInv is missing — the mapper cannot
  /// operate without an inverter.
  static CellLibrary from_cells(std::vector<Cell> cells);

  const Cell& cell(CellKind kind) const;
  const std::vector<Cell>& cells() const { return cells_; }

  const Cell& inverter() const { return cell(CellKind::kInv); }

  /// Default load assumed during mapping before real fanout is known.
  double nominal_load() const { return 2.0 * inverter().input_cap; }

 private:
  explicit CellLibrary(std::vector<Cell> cells);
  std::vector<Cell> cells_;
  std::vector<int> index_by_kind_;
};

}  // namespace rdc
