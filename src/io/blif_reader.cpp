#include "io/blif_reader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "pla/cover.hpp"
#include "sop/factor.hpp"

namespace rdc {
namespace {

struct NamesTable {
  std::vector<std::string> fanins;
  std::string output;
  std::vector<std::string> rows;  ///< "<cube> <phase>" or "<phase>"
  unsigned line = 0;
};

[[noreturn]] void fail(unsigned line, const std::string& what) {
  throw std::runtime_error("blif line " + std::to_string(line) + ": " + what);
}

/// Reads logical lines: strips comments, joins '\' continuations.
std::vector<std::pair<unsigned, std::string>> logical_lines(
    std::istream& in) {
  std::vector<std::pair<unsigned, std::string>> lines;
  std::string line;
  unsigned line_no = 0;
  std::string pending;
  unsigned pending_line = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    bool continued = false;
    if (!line.empty() && line.back() == '\\') {
      line.pop_back();
      continued = true;
    }
    if (pending.empty()) pending_line = line_no;
    pending += line;
    if (continued) {
      pending += ' ';
      continue;
    }
    // Emit if non-blank.
    std::istringstream probe(pending);
    std::string tok;
    if (probe >> tok) lines.emplace_back(pending_line, pending);
    pending.clear();
  }
  if (!pending.empty()) lines.emplace_back(pending_line, pending);
  return lines;
}

class BlifBuilder {
 public:
  BlifBuilder(BlifModel& model, std::vector<NamesTable> tables)
      : model_(model) {
    for (std::size_t i = 0; i < model_.input_names.size(); ++i)
      input_index_[model_.input_names[i]] = static_cast<unsigned>(i);
    for (auto& t : tables) {
      if (table_index_.count(t.output))
        fail(t.line, "signal '" + t.output + "' defined twice");
      // build_signal resolves inputs first, so a table for an input name
      // would silently be dead logic; reject the shadowing instead.
      if (input_index_.count(t.output))
        fail(t.line,
             ".names redefines primary input '" + t.output + "'");
      table_index_[t.output] = tables_.size();
      tables_.push_back(std::move(t));
    }
    state_.assign(tables_.size(), State::kUnvisited);
    literal_.assign(tables_.size(), aiglit::kFalse);
  }

  std::uint32_t build_signal(const std::string& name, unsigned ref_line) {
    if (const auto it = input_index_.find(name); it != input_index_.end())
      return model_.aig.input_literal(it->second);
    const auto it = table_index_.find(name);
    if (it == table_index_.end())
      fail(ref_line, "undefined signal '" + name + "'");
    const std::size_t index = it->second;
    if (state_[index] == State::kBuilt) return literal_[index];
    if (state_[index] == State::kBuilding)
      fail(ref_line, "combinational cycle through '" + name + "'");
    state_[index] = State::kBuilding;
    literal_[index] = build_table(tables_[index]);
    state_[index] = State::kBuilt;
    return literal_[index];
  }

 private:
  enum class State : std::uint8_t { kUnvisited, kBuilding, kBuilt };

  std::uint32_t build_table(const NamesTable& table) {
    const auto k = static_cast<unsigned>(table.fanins.size());
    if (k > 20) fail(table.line, ".names wider than 20 inputs");

    if (table.rows.empty()) return aiglit::kFalse;  // empty table = 0

    Cover cover(k == 0 ? 1 : k);
    int phase = -1;
    for (const std::string& row : table.rows) {
      std::istringstream rs(row);
      std::string cube_text, phase_text;
      if (k == 0) {
        rs >> phase_text;
      } else {
        rs >> cube_text >> phase_text;
      }
      if (phase_text != "0" && phase_text != "1")
        fail(table.line, "bad .names row '" + row + "'");
      const int row_phase = phase_text == "1" ? 1 : 0;
      if (phase == -1) phase = row_phase;
      if (phase != row_phase)
        fail(table.line, ".names mixes output phases");
      if (k == 0) continue;
      if (cube_text.size() != k)
        fail(table.line, ".names row width mismatch");
      try {
        cover.add(Cube::parse(cube_text));
      } catch (const std::invalid_argument& e) {
        fail(table.line, e.what());  // attach the line to the cube error
      }
    }

    if (k == 0) return phase == 1 ? aiglit::kTrue : aiglit::kFalse;

    std::vector<std::uint32_t> leaf_lits;
    leaf_lits.reserve(k);
    for (const std::string& fanin : table.fanins)
      leaf_lits.push_back(build_signal(fanin, table.line));
    const std::uint32_t lit =
        model_.aig.build(factor(cover), leaf_lits);
    // '0'-phase rows define the off-set: the function is the complement.
    return phase == 1 ? lit : aiglit::negate(lit);
  }

  BlifModel& model_;
  std::vector<NamesTable> tables_;
  std::unordered_map<std::string, unsigned> input_index_;
  std::unordered_map<std::string, std::size_t> table_index_;
  std::vector<State> state_;
  std::vector<std::uint32_t> literal_;
};

}  // namespace

BlifModel parse_blif(std::istream& in) {
  BlifModel model;
  std::vector<NamesTable> tables;
  // Index (not pointer): the vector reallocates as tables are appended.
  std::ptrdiff_t open_table = -1;

  for (const auto& [line_no, text] : logical_lines(in)) {
    std::istringstream ls(text);
    std::string tok;
    ls >> tok;
    if (tok == ".model") {
      ls >> model.name;
      open_table = -1;
    } else if (tok == ".inputs") {
      std::string name;
      while (ls >> name) {
        for (const std::string& existing : model.input_names)
          if (existing == name)
            fail(line_no, "duplicate input '" + name + "'");
        model.input_names.push_back(name);
      }
      open_table = -1;
    } else if (tok == ".outputs") {
      std::string name;
      while (ls >> name) model.output_names.push_back(name);
      open_table = -1;
    } else if (tok == ".names") {
      std::vector<std::string> signals;
      std::string name;
      while (ls >> name) signals.push_back(name);
      if (signals.empty()) fail(line_no, ".names without signals");
      NamesTable table;
      table.output = signals.back();
      signals.pop_back();
      table.fanins = std::move(signals);
      table.line = line_no;
      tables.push_back(std::move(table));
      open_table = static_cast<std::ptrdiff_t>(tables.size()) - 1;
    } else if (tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      fail(line_no, "unsupported directive " + tok);
    } else {
      if (open_table < 0) fail(line_no, "table row outside .names");
      tables[static_cast<std::size_t>(open_table)].rows.push_back(text);
    }
  }
  if (model.input_names.empty()) {
    throw std::runtime_error("blif: model has no .inputs");
  }
  if (model.input_names.size() > TernaryTruthTable::kMaxInputs)
    throw std::runtime_error("blif: more than 20 primary inputs");

  model.aig = Aig(static_cast<unsigned>(model.input_names.size()));
  BlifBuilder builder(model, std::move(tables));
  for (const std::string& out : model.output_names)
    model.aig.add_output(builder.build_signal(out, 0));
  return model;
}

BlifModel parse_blif_string(const std::string& text) {
  std::istringstream in(text);
  return parse_blif(in);
}

BlifModel load_blif(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  BlifModel model = parse_blif(in);
  if (model.name.empty()) model.name = path.stem().string();
  return model;
}

}  // namespace rdc
