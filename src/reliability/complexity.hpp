// Complexity-factor metrics (Sections 2.2, 3.1 and 4 of the paper).
//
// The (normalized) complexity factor C^f of an n-input function is the
// fraction of ordered 1-Hamming-distance minterm pairs that share a phase
// (on/off/DC). It predicts minimal-SOP size (Fig. 2 of the paper): C^f = 1
// is a constant function, C^f = 0 (fully specified) is a parity function.
//
// The *local* complexity factor LC^f(x_i) restricts the count to pairs
// (x_j, x_k) with x_j a neighbor of x_i and x_k a neighbor of x_j; it drives
// the complexity-factor-based DC assignment of Section 4.
#pragma once

#include <cstdint>

#include "tt/incomplete_spec.hpp"
#include "tt/neighbor_stats.hpp"
#include "tt/ternary_function.hpp"

namespace rdc {

/// Ordered same-phase distance-1 pair count, the numerator of C^f:
/// |{(x_j, x_k) : D(x_j, x_k) = 1, f(x_j) = f(x_k)}|. Word-parallel
/// (one AND+popcount per pin and phase); also used to seed the synthetic
/// generator's annealing loop.
std::uint64_t same_phase_pairs(const TernaryTruthTable& f);

/// Normalized complexity factor C^f in [0, 1] (0 for 0-input functions).
double complexity_factor(const TernaryTruthTable& f);

/// Scalar reference for C^f via a scalar NeighborTable (differential
/// testing and microbenchmarks).
double complexity_factor_scalar(const TernaryTruthTable& f);

/// Mean C^f across the outputs of a multi-output spec.
double complexity_factor(const IncompleteSpec& spec);

/// Expected complexity factor under random phase assignment with the
/// function's signal probabilities: E[C^f] = f0^2 + f1^2 + fDC^2.
double expected_complexity_factor(const TernaryTruthTable& f);
double expected_complexity_factor(const IncompleteSpec& spec);

/// Normalized local complexity factor LC^f(x_i) in [0, 1]:
///   (1/n^2) |{(x_j, x_k) : D(x_i,x_j)=1, D(x_j,x_k)=1, f(x_j)=f(x_k)}|.
/// Taken literally from the paper: x_k ranges over all n neighbors of x_j,
/// including x_i itself.
double local_complexity_factor(const TernaryTruthTable& f,
                               const NeighborTable& neighbors,
                               std::uint32_t minterm);

/// Convenience overload building the neighbor table internally (O(n·2^n)).
double local_complexity_factor(const TernaryTruthTable& f,
                               std::uint32_t minterm);

}  // namespace rdc
