#include "espresso/espresso.hpp"

#include <utility>

#include "espresso/complement.hpp"
#include "espresso/expand.hpp"
#include "espresso/irredundant.hpp"
#include "espresso/reduce.hpp"
#include "exec/budget.hpp"
#include "exec/fault.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace rdc {
namespace {

struct Cost {
  std::size_t cubes = 0;
  std::uint64_t literals = 0;
  bool operator<(const Cost& other) const {
    return std::pair(cubes, literals) < std::pair(other.cubes, other.literals);
  }
  bool operator==(const Cost&) const = default;
};

Cost cost_of(const Cover& cover) {
  return Cost{cover.size(), cover.literal_count()};
}

}  // namespace

EspressoResult espresso_bounded(const Cover& on, const Cover& dc,
                                const Cover& off,
                                const EspressoOptions& options) {
  RDC_SPAN("espresso.run");
  obs::count(obs::Counter::kEspressoCalls);
  exec::fault_point("espresso");
  EspressoResult result;
  Cover current = on;
  current.remove_single_cube_contained();
  if (current.empty_cover()) {
    obs::observe(obs::Histo::kEspressoIterations, 0);
    result.cover = current;
    return result;
  }
  // From here on `result.cover` is only ever replaced by a *completed*
  // pass's cover, so a mid-pass budget trip salvages a valid (if less
  // minimized) cover of the on-set.
  result.cover = current;

  unsigned iterations = 0;
  try {
    exec::checkpoint();
    current = expand(current, off);
    current = irredundant(current, dc);
    Cost best = cost_of(current);
    result.cover = current;

    for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
      exec::checkpoint();
      ++iterations;
      current = reduce(current, dc);
      current = expand(current, off);
      current = irredundant(current, dc);
      const Cost c = cost_of(current);
      if (c < best) {
        best = c;
        result.cover = current;
      } else {
        break;  // converged (or oscillating): keep the best seen
      }
    }
  } catch (const exec::StatusError& error) {
    if (!exec::is_budget_code(error.status().code())) throw;
    result.status = error.status();
    result.status.with_context("espresso");
    result.partial = true;
  }
  obs::count(obs::Counter::kEspressoIterations, iterations);
  obs::observe(obs::Histo::kEspressoIterations, iterations);
  return result;
}

Cover espresso(const Cover& on, const Cover& dc, const Cover& off,
               const EspressoOptions& options) {
  EspressoResult result = espresso_bounded(on, dc, off, options);
  if (result.partial) throw exec::StatusError(std::move(result.status));
  return std::move(result.cover);
}

EspressoResult minimize_bounded(const TernaryTruthTable& f,
                                const EspressoOptions& options) {
  const Cover on = Cover::from_phase(f, Phase::kOne);
  const Cover dc = Cover::from_phase(f, Phase::kDc);

  // The off-set is known exactly; complementing on ∪ dc gives a compact
  // blocking cover (far fewer cubes than one per off minterm).
  Cover on_dc = on;
  for (const Cube& c : dc.cubes()) on_dc.add(c);
  const Cover off = complement(on_dc);

  return espresso_bounded(on, dc, off, options);
}

Cover minimize(const TernaryTruthTable& f, const EspressoOptions& options) {
  EspressoResult result = minimize_bounded(f, options);
  if (result.partial) throw exec::StatusError(std::move(result.status));
  return std::move(result.cover);
}

std::size_t minimal_sop_size(const TernaryTruthTable& f) {
  return minimize(f).size();
}

std::size_t minimal_sop_size(const IncompleteSpec& spec) {
  std::size_t total = 0;
  for (const auto& f : spec.outputs()) total += minimal_sop_size(f);
  return total;
}

Cover conventional_assign(TernaryTruthTable& f,
                          const EspressoOptions& options) {
  const Cover cover = minimize(f, options);
  obs::count(obs::Counter::kDcConventionalAssigned, f.dc_count());
  for (std::uint32_t m : f.dc_minterms())
    f.set_phase(m, cover.covers_minterm(m) ? Phase::kOne : Phase::kZero);
  return cover;
}

void conventional_assign(IncompleteSpec& spec) {
  for (auto& f : spec.outputs()) conventional_assign(f);
}

bool cover_is_valid_for(const Cover& cover, const TernaryTruthTable& f) {
  for (std::uint32_t m = 0; m < f.size(); ++m) {
    const bool covered = cover.covers_minterm(m);
    if (f.is_on(m) && !covered) return false;
    if (f.is_off(m) && covered) return false;
  }
  return true;
}

}  // namespace rdc
