# Empty compiler generated dependencies file for rdcsyn_cli.
# This may be replaced when dependencies are built.
