// EXPAND step of the ESPRESSO loop: enlarge each cube to a prime implicant
// against the off-set, discarding cubes that become covered along the way.
#pragma once

#include "pla/cover.hpp"

namespace rdc {

/// Expands every cube of `on` against the blocking cover `off` (which must
/// be disjoint from the ON- and DC-sets). Returns a prime cover of the same
/// function, usually with fewer cubes.
Cover expand(const Cover& on, const Cover& off);

/// Expands a single cube to a prime implicant against `off`, greedily
/// raising one variable at a time (preferring raises that cover the most
/// not-yet-covered cubes of `peers`).
Cube expand_cube(const Cube& c, const Cover& off, const Cover& peers);

}  // namespace rdc
