#include "flow/synthesis_flow.hpp"

#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/balance.hpp"
#include "common/thread_pool.hpp"
#include "decomp/renode.hpp"
#include "espresso/espresso.hpp"
#include "exec/fault.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "reliability/error_rate.hpp"
#include "sop/extract.hpp"
#include "sop/factor.hpp"

namespace rdc {
namespace {

/// Factor + AIG + map a set of per-output covers. When `report` is given,
/// the factor_aig / map phases are timed into it and the AIG node count is
/// recorded as a metric.
Netlist synthesize_covers(unsigned num_inputs,
                          const std::vector<Cover>& covers,
                          OptimizeFor objective, bool resyn_recipe,
                          bool use_extraction, const CellLibrary& lib,
                          obs::FlowReport* report) {
  obs::FlowReport scratch;  // discarded when the caller doesn't want one
  obs::FlowReport& r = report != nullptr ? *report : scratch;

  Aig aig(num_inputs);
  {
    obs::PhaseScope phase(r, "factor_aig");
    if (use_extraction) {
      const ExtractionResult extraction = build_with_extraction(aig, covers);
      for (const std::uint32_t out : extraction.outputs) aig.add_output(out);
    } else {
      for (const Cover& cover : covers)
        aig.add_output(aig.build(factor(cover)));
    }
    if (resyn_recipe) {
      // Second-opinion restructuring: balance, refactor nodes against their
      // satisfiability DCs (output-preserving), keep the result only when it
      // shrinks, balance again.
      aig = balance(aig);
      RenodeOptions renode_options;
      renode_options.reliability_assign = false;
      RenodeResult refactored = renode_and_assign(aig, renode_options);
      if (refactored.network.num_ands() < aig.num_ands())
        aig = std::move(refactored.network);
      aig = balance(aig);
    }
    if (objective == OptimizeFor::kDelay) aig = balance(aig);
  }
  obs::count(obs::Counter::kAigAndsBuilt, aig.num_ands());
  r.metrics.set("aig_ands", aig.num_ands());

  obs::PhaseScope phase(r, "map");
  MapOptions map_options;
  map_options.objective = objective == OptimizeFor::kDelay
                              ? MapObjective::kDelay
                              : MapObjective::kArea;
  return map_aig(aig, lib, map_options);
}

const char* policy_name(DcPolicy policy) {
  switch (policy) {
    case DcPolicy::kConventional: return "conventional";
    case DcPolicy::kRankingFraction: return "ranking_fraction";
    case DcPolicy::kRankingIncremental: return "ranking_incremental";
    case DcPolicy::kLcfThreshold: return "lcf_threshold";
    case DcPolicy::kAllReliability: return "all_reliability";
  }
  return "unknown";
}

}  // namespace

Netlist synthesize(const IncompleteSpec& assigned, OptimizeFor objective) {
  RDC_SPAN("flow.synthesize");
  for (const auto& f : assigned.outputs())
    if (!f.fully_specified())
      throw std::invalid_argument("synthesize: spec must be fully assigned");
  // Outputs are minimized independently; fan the ESPRESSO passes out over
  // the process-wide pool (RDC_THREADS).
  std::vector<Cover> covers(assigned.num_outputs(),
                            Cover(assigned.num_inputs()));
  ThreadPool::global().parallel_for(
      0, assigned.num_outputs(), [&](std::uint64_t o) {
        covers[o] = minimize(assigned.output(static_cast<unsigned>(o)));
      });
  return synthesize_covers(assigned.num_inputs(), covers, objective,
                           /*resyn_recipe=*/false, /*use_extraction=*/false,
                           CellLibrary::generic70(), /*report=*/nullptr);
}

namespace {

/// One full pass of the flow pipeline at a given ESPRESSO effort. Throws
/// on budget trips / injected faults; the ladder in run_flow catches.
FlowResult run_pipeline(const IncompleteSpec& spec, DcPolicy policy,
                        const FlowOptions& options,
                        const EspressoOptions& espresso_options) {
  obs::FlowReport report;
  IncompleteSpec working = spec;

  AssignmentResult assignment;
  {
    obs::PhaseScope phase(report, "dc_assign");
    switch (policy) {
      case DcPolicy::kConventional:
        break;
      case DcPolicy::kRankingFraction:
        assignment = ranking_assign(working, options.ranking_fraction);
        break;
      case DcPolicy::kRankingIncremental:
        assignment =
            ranking_assign_incremental(working, options.ranking_fraction);
        break;
      case DcPolicy::kLcfThreshold:
        assignment = lcf_assign(working, options.lcf_threshold,
                                options.lcf_assign_balanced);
        break;
      case DcPolicy::kAllReliability:
        assignment = ranking_assign(working, 1.0);
        break;
    }
  }

  // Conventional assignment of whatever the reliability pass left as DC —
  // exactly what handing the partially assigned .pla to the optimizer does
  // in the paper's flow. The minimized covers double as the synthesis
  // input. Each output is independent, so the ESPRESSO passes fan out over
  // the process-wide pool (RDC_THREADS).
  std::vector<Cover> covers(working.num_outputs(),
                            Cover(working.num_inputs()));
  {
    obs::PhaseScope phase(report, "espresso");
    ThreadPool::global().parallel_for(
        0, working.num_outputs(), [&](std::uint64_t o) {
          covers[o] = conventional_assign(
              working.output(static_cast<unsigned>(o)), espresso_options);
        });
  }

  FlowResult result{std::move(working), Netlist(spec.num_inputs()), {}, 0.0,
                    assignment, {}, {}, DegradationLevel::kNone};
  const CellLibrary& lib =
      options.library ? *options.library : CellLibrary::generic70();
  result.netlist = synthesize_covers(spec.num_inputs(), covers,
                                     options.objective, options.resyn_recipe,
                                     options.use_extraction, lib, &report);
  {
    obs::PhaseScope phase(report, "analyze");
    result.stats = analyze_netlist(result.netlist, lib);
  }
  {
    obs::PhaseScope phase(report, "error_rate");
    result.error_rate = exact_error_rate(result.implementation, spec);
  }

  report.metrics.set("name", spec.name());
  report.metrics.set("policy", policy_name(policy));
  report.metrics.set("inputs", spec.num_inputs());
  report.metrics.set("outputs", spec.num_outputs());
  report.metrics.set("dc_before", assignment.dc_before);
  report.metrics.set("dc_assigned", assignment.assigned);
  report.metrics.set("dc_assigned_on", assignment.assigned_on);
  report.metrics.set("gates", result.stats.gates);
  report.metrics.set("area", result.stats.area);
  report.metrics.set("delay_ps", result.stats.delay_ps);
  report.metrics.set("power_uw", result.stats.power_uw);
  report.metrics.set("error_rate", result.error_rate);
  result.report = std::move(report);
  return result;
}

/// The ladder's last functional rung: no minimization at all. Remaining
/// DCs are forced to 0 (the paper's power-friendly default phase), covers
/// are raw minterm lists, and the whole rung runs with the budget MASKED so
/// it terminates even after a deadline has expired.
FlowResult run_conventional_fallback(const IncompleteSpec& spec,
                                     DcPolicy /*policy*/,
                                     const FlowOptions& options) {
  exec::BudgetScope mask(nullptr);
  exec::fault_point("flow.conventional");
  obs::FlowReport report;
  IncompleteSpec working = spec;
  {
    obs::PhaseScope phase(report, "dc_assign");
    for (auto& f : working.outputs())
      for (const std::uint32_t m : f.dc_minterms())
        f.set_phase(m, Phase::kZero);
  }

  std::vector<Cover> covers;
  covers.reserve(working.num_outputs());
  for (const auto& f : working.outputs())
    covers.push_back(Cover::from_phase(f, Phase::kOne));

  FlowResult result{std::move(working), Netlist(spec.num_inputs()), {}, 0.0,
                    {}, {}, {}, DegradationLevel::kConventional};
  const CellLibrary& lib =
      options.library ? *options.library : CellLibrary::generic70();
  // Minterm covers can be wide; factor them plainly (no resyn/extraction)
  // so the fallback's cost stays proportional to the spec size.
  result.netlist = synthesize_covers(spec.num_inputs(), covers,
                                     options.objective,
                                     /*resyn_recipe=*/false,
                                     /*use_extraction=*/false, lib, &report);
  {
    obs::PhaseScope phase(report, "analyze");
    result.stats = analyze_netlist(result.netlist, lib);
  }
  {
    obs::PhaseScope phase(report, "error_rate");
    result.error_rate = exact_error_rate(result.implementation, spec);
  }
  report.metrics.set("gates", result.stats.gates);
  report.metrics.set("area", result.stats.area);
  report.metrics.set("delay_ps", result.stats.delay_ps);
  report.metrics.set("power_uw", result.stats.power_uw);
  report.metrics.set("error_rate", result.error_rate);
  result.report = std::move(report);
  return result;
}

/// Stamps the §10 report-schema additions onto a finished result.
void finalize(FlowResult& result, const IncompleteSpec& spec, DcPolicy policy,
              DegradationLevel level, const exec::Status& reason) {
  result.degradation = level;
  obs::Record& metrics = result.report.metrics;
  metrics.set("name", spec.name());
  metrics.set("policy", policy_name(policy));
  metrics.set("inputs", spec.num_inputs());
  metrics.set("outputs", spec.num_outputs());
  metrics.set("status", status_code_name(result.status.code()));
  metrics.set("degradation_level", static_cast<int>(level));
  metrics.set("degradation", degradation_level_name(level));
  if (level != DegradationLevel::kNone && !reason.ok())
    metrics.set("degraded_reason", reason.to_string());
}

}  // namespace

const char* degradation_level_name(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNone: return "none";
    case DegradationLevel::kHeuristic: return "heuristic";
    case DegradationLevel::kConventional: return "conventional";
    case DegradationLevel::kPartial: return "partial";
  }
  return "unknown";
}

FlowResult run_flow(const IncompleteSpec& spec, DcPolicy policy,
                    const FlowOptions& options) {
  RDC_SPAN("flow.run");
  // Install the caller-provided budget (if any) for the whole flow; the
  // thread pool re-installs it on every worker of the fan-out.
  std::optional<exec::BudgetScope> scope;
  if (options.budget != nullptr) scope.emplace(options.budget);

  // Rung 0: the full-quality flow with exact-effort ESPRESSO.
  exec::Result<FlowResult> exact = exec::capture([&] {
    exec::fault_point("flow.exact");
    return run_pipeline(spec, policy, options, EspressoOptions{});
  });
  if (exact.ok()) {
    finalize(*exact, spec, policy, DegradationLevel::kNone, exec::Status());
    return std::move(*exact);
  }
  exec::Status reason = exact.status();

  // A cancellation is a request to stop, not to try harder with less
  // effort; skip straight to the partial result.
  if (reason.code() != exec::StatusCode::kCancelled) {
    // Rung 1: heuristic ESPRESSO — single expand+irredundant pass.
    exec::Result<FlowResult> heuristic = exec::capture([&] {
      exec::fault_point("flow.heuristic");
      EspressoOptions cheap;
      cheap.max_iterations = 0;
      return run_pipeline(spec, policy, options, cheap);
    });
    if (heuristic.ok()) {
      finalize(*heuristic, spec, policy, DegradationLevel::kHeuristic,
               reason);
      return std::move(*heuristic);
    }

    // Rung 2: conventional-only assignment, budget masked.
    exec::Result<FlowResult> fallback = exec::capture(
        [&] { return run_conventional_fallback(spec, policy, options); });
    if (fallback.ok()) {
      finalize(*fallback, spec, policy, DegradationLevel::kConventional,
               reason);
      return std::move(*fallback);
    }
    reason = fallback.status();
  }

  // Partial result: no netlist, but still a well-formed FlowResult with a
  // parseable report so harnesses can emit an error row and move on.
  FlowResult partial{spec, Netlist(spec.num_inputs()), {}, 0.0,
                     {}, {}, {}, DegradationLevel::kPartial};
  partial.status = reason;
  partial.status.with_context("flow");
  finalize(partial, spec, policy, DegradationLevel::kPartial, reason);
  return partial;
}

}  // namespace rdc
