// Nodal decomposition with internal don't-care reassignment — the Section-4
// extension of the paper ("renode" in ABC terms).
//
// The AIG is partitioned into fanout-free nodes (tree roots); each node's
// local function over its boundary signals is extracted by exhaustive
// simulation, and boundary patterns that never occur — satisfiability don't
// cares — become the node's DC set. Those DCs are then assigned with the
// paper's reliability-driven LC^f algorithm and the node is resynthesized.
//
// SDC-only rewrites are compositionally safe: an SDC pattern never occurs
// on any reachable input vector, so no signal in the network changes value
// and the primary outputs are preserved exactly (tests verify this).
#pragma once

#include <cstdint>

#include "aig/aig.hpp"
#include "common/rng.hpp"

namespace rdc {

struct RenodeOptions {
  unsigned max_node_inputs = 10;   ///< nodes with more boundary signals are copied verbatim
  double lcf_threshold = 0.55;     ///< LC^f gate for the reliability pass
  bool reliability_assign = true;  ///< false: plain SDC minimization only
};

struct RenodeResult {
  Aig network;                     ///< rebuilt AIG, outputs unchanged
  std::size_t nodes_total = 0;     ///< tree roots visited
  std::size_t nodes_resynthesized = 0;
  std::uint64_t sdc_patterns = 0;  ///< local DC patterns discovered
  std::uint64_t dcs_assigned = 0;  ///< of those, assigned by the LC^f pass
};

/// Decomposes, extracts SDCs, reassigns and resynthesizes. Input count must
/// be <= 20 (exhaustive simulation).
RenodeResult renode_and_assign(const Aig& aig,
                               const RenodeOptions& options = {});

/// Monte-Carlo internal masking metric: fraction of (random input vector,
/// random AND node output flip) events that change at least one primary
/// output. Lower is better.
double internal_error_rate(const Aig& aig, unsigned samples, Rng& rng);

}  // namespace rdc
