// Structured lifecycle event log (schema rdc.events.v1).
//
// A process-wide JSONL stream for incident forensics: the Pipeline
// harness, the degradation ladder, ExecBudget trips, and RDC_FAULT
// injections emit one compact JSON object per line to the sink named by
// RDC_EVENTS=<path> (append; "-" for stderr). Each line carries the
// schema tag, a process-monotonic sequence number (== line order, the
// sink mutex assigns it), a trace-epoch timestamp, the event name, and
// event-specific fields:
//
//   {"schema": "rdc.events.v1", "seq": 3, "ts_ns": 51234, "tid": 0,
//    "event": "pass.end", "pass": "espresso", "circuit": "rd53",
//    "status": "OK", "wall_ms": 1.25}
//
// Event taxonomy (emitters in parentheses):
//   pipeline.begin / pipeline.end  (flow::Pipeline::run)
//   pass.begin / pass.end          (flow::Pipeline::run, per pass)
//   flow.degrade                   (run_flow's degradation ladder)
//   budget.trip                    (exec::ExecBudget, first trip only)
//   fault.fired                    (exec::fault_point, on the throwing hit)
//
// Determinism: `ts_ns` and `wall_ms` are the only run-varying fields; with
// RDC_THREADS=1 the stream minus those fields is byte-identical run to
// run (under parallel fan-out, lines from different circuits interleave
// but every line's non-timing content is still deterministic).
//
// Cost: events_enabled() is one relaxed atomic load; call sites guard on
// it before building the field record, so the disabled cost matches the
// tracer's. Emission takes a short global mutex — events are rare
// (pass-level, not kernel-level) by design.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace rdc::obs {

namespace detail {
/// -1 until first use; then 0 (off) or 1 (a sink or capture is active).
extern std::atomic<int> g_events_enabled;
int init_events_enabled_from_env();
}  // namespace detail

inline bool events_enabled() {
  const int enabled = detail::g_events_enabled.load(std::memory_order_relaxed);
  return (enabled >= 0 ? enabled : detail::init_events_enabled_from_env()) !=
         0;
}

/// Appends one event line. `name` must outlive the call (string literals).
/// `fields` is written after the standard header fields, in insertion
/// order. No-op when disabled — but prefer guarding on events_enabled()
/// so the Record is never built.
void emit_event(const char* name, const Record& fields);
void emit_event(const char* name);

/// Programmatic sink control (overrides the environment): an empty path
/// disables, "-" selects stderr, anything else appends to that file.
void set_events_path(const std::string& path);

/// Flushes the file sink's buffered lines to the OS. Called before a
/// shutdown-signal re-raise so the terminating record is on disk before
/// the default disposition kills the process.
void flush_events();

/// Capture mode for tests: events are retained in memory instead of (in
/// addition to nothing) a file; drain_events() returns and clears them.
void set_events_capture(bool capture);
std::vector<std::string> drain_events();

}  // namespace rdc::obs
