#include "mapper/cell_library.hpp"

#include <cassert>
#include <stdexcept>

namespace rdc {

bool evaluate_cell(CellKind kind, std::span<const bool> in) {
  switch (kind) {
    case CellKind::kInv:
      return !in[0];
    case CellKind::kBuf:
      return in[0];
    case CellKind::kAnd2:
      return in[0] && in[1];
    case CellKind::kNand2:
      return !(in[0] && in[1]);
    case CellKind::kOr2:
      return in[0] || in[1];
    case CellKind::kNor2:
      return !(in[0] || in[1]);
    case CellKind::kAnd3:
      return in[0] && in[1] && in[2];
    case CellKind::kNand3:
      return !(in[0] && in[1] && in[2]);
    case CellKind::kOr3:
      return in[0] || in[1] || in[2];
    case CellKind::kNor3:
      return !(in[0] || in[1] || in[2]);
    case CellKind::kAnd4:
      return in[0] && in[1] && in[2] && in[3];
    case CellKind::kNand4:
      return !(in[0] && in[1] && in[2] && in[3]);
    case CellKind::kAoi21:
      return !((in[0] && in[1]) || in[2]);
    case CellKind::kOai21:
      return !((in[0] || in[1]) && in[2]);
    case CellKind::kAoi22:
      return !((in[0] && in[1]) || (in[2] && in[3]));
    case CellKind::kOai22:
      return !((in[0] || in[1]) && (in[2] || in[3]));
    case CellKind::kXor2:
      return in[0] != in[1];
    case CellKind::kXnor2:
      return in[0] == in[1];
    case CellKind::kTie0:
      return false;
    case CellKind::kTie1:
      return true;
  }
  return false;
}

CellLibrary CellLibrary::from_cells(std::vector<Cell> cells) {
  bool has_inverter = false;
  for (const Cell& c : cells) has_inverter |= c.kind == CellKind::kInv;
  if (!has_inverter)
    throw std::invalid_argument("CellLibrary: an inverter cell is required");
  return CellLibrary(std::move(cells));
}

CellLibrary::CellLibrary(std::vector<Cell> cells) : cells_(std::move(cells)) {
  index_by_kind_.assign(64, -1);
  for (std::size_t i = 0; i < cells_.size(); ++i)
    index_by_kind_[static_cast<std::size_t>(cells_[i].kind)] =
        static_cast<int>(i);
}

const Cell& CellLibrary::cell(CellKind kind) const {
  const int idx = index_by_kind_[static_cast<std::size_t>(kind)];
  if (idx < 0) throw std::out_of_range("cell kind not in library");
  return cells_[static_cast<std::size_t>(idx)];
}

const CellLibrary& CellLibrary::generic70() {
  // Representative 70 nm-class values: area in um^2, caps in fF, delays in
  // ps, leakage in nW, internal energy in fJ per transition.
  static const CellLibrary lib(std::vector<Cell>{
      // kind              name      #in  area  cap  intr  slope leak  eint
      {CellKind::kInv, "INVX1", 1, 1.00, 1.0, 8.0, 2.0, 1.0, 0.40},
      {CellKind::kBuf, "BUFX1", 1, 1.33, 1.0, 16.0, 1.8, 1.4, 0.60},
      {CellKind::kAnd2, "AND2X1", 2, 1.67, 1.0, 18.0, 2.2, 2.0, 0.80},
      {CellKind::kNand2, "NAND2X1", 2, 1.33, 1.1, 12.0, 2.3, 1.6, 0.55},
      {CellKind::kOr2, "OR2X1", 2, 1.67, 1.0, 20.0, 2.4, 2.0, 0.85},
      {CellKind::kNor2, "NOR2X1", 2, 1.33, 1.2, 14.0, 2.8, 1.6, 0.60},
      {CellKind::kAnd3, "AND3X1", 3, 2.00, 1.0, 22.0, 2.3, 2.6, 1.00},
      {CellKind::kNand3, "NAND3X1", 3, 1.67, 1.2, 16.0, 2.8, 2.2, 0.75},
      {CellKind::kOr3, "OR3X1", 3, 2.00, 1.0, 24.0, 2.6, 2.6, 1.05},
      {CellKind::kNor3, "NOR3X1", 3, 1.67, 1.3, 20.0, 3.4, 2.2, 0.80},
      {CellKind::kAnd4, "AND4X1", 4, 2.33, 1.0, 26.0, 2.4, 3.1, 1.20},
      {CellKind::kNand4, "NAND4X1", 4, 2.00, 1.3, 20.0, 3.2, 2.8, 0.95},
      {CellKind::kAoi21, "AOI21X1", 3, 1.67, 1.2, 16.0, 2.9, 2.0, 0.70},
      {CellKind::kOai21, "OAI21X1", 3, 1.67, 1.2, 16.0, 2.9, 2.0, 0.70},
      {CellKind::kAoi22, "AOI22X1", 4, 2.00, 1.3, 20.0, 3.3, 2.4, 0.90},
      {CellKind::kOai22, "OAI22X1", 4, 2.00, 1.3, 20.0, 3.3, 2.4, 0.90},
      {CellKind::kXor2, "XOR2X1", 2, 2.33, 1.8, 24.0, 3.0, 3.0, 1.30},
      {CellKind::kXnor2, "XNOR2X1", 2, 2.33, 1.8, 24.0, 3.0, 3.0, 1.30},
      {CellKind::kTie0, "TIELO", 0, 0.33, 0.0, 0.0, 0.0, 0.2, 0.0},
      {CellKind::kTie1, "TIEHI", 0, 0.33, 0.0, 0.0, 0.0, 0.2, 0.0},
  });
  return lib;
}

}  // namespace rdc
