// Bit-manipulation helpers shared across rdcsyn.
//
// Minterms of an n-input Boolean function are identified with unsigned
// integers in [0, 2^n); bit j of the index is the value of input x_j.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace rdc {

/// Number of minterms of an n-input function. Valid for n <= 30.
constexpr std::uint32_t num_minterms(unsigned n) {
  assert(n <= 30);
  return 1u << n;
}

/// Hamming distance between two minterm indices.
constexpr unsigned hamming_distance(std::uint32_t a, std::uint32_t b) {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

/// The 1-Hamming-distance neighbor of `m` obtained by flipping input `bit`.
constexpr std::uint32_t flip_bit(std::uint32_t m, unsigned bit) {
  return m ^ (1u << bit);
}

/// True iff `m` has input `bit` set to 1.
constexpr bool test_bit(std::uint32_t m, unsigned bit) {
  return (m >> bit) & 1u;
}

}  // namespace rdc
