// Tests for the crash-safe batch layer (DESIGN.md §14): the chaos
// grammar and its deterministic per-(job, attempt) decisions, the
// rdc.journal.v1 writer/replayer (durability, tolerant replay, the
// duplicate-terminal audit), the process-isolation supervisor (payload
// round trips, crash/hang/OOM classification, retry-with-backoff,
// deterministic interruption), and the supervised batch driver's
// journaled resume reproducing an uninterrupted run's report.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exec/chaos.hpp"
#include "exec/journal.hpp"
#include "exec/shutdown.hpp"
#include "exec/supervisor.hpp"
#include "flow/batch_supervisor.hpp"
#include "flow/pipeline.hpp"
#include "obs/counters.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "pla/pla_io.hpp"

namespace rdc {
namespace {

using exec::StatusCode;

constexpr const char* kBuiltinPla = R"(.i 4
.o 2
.type fd
.p 8
0000 1-
0011 11
01-- -1
1000 --
1011 1-
110- -0
1111 1-
1010 -1
.e
)";

IncompleteSpec builtin_spec() {
  return parse_pla_string(kBuiltinPla, "builtin");
}

IncompleteSpec random_spec(unsigned n, unsigned outputs, double dc_prob,
                           Rng& rng, const std::string& name = "random") {
  IncompleteSpec spec(name, n, outputs);
  for (auto& f : spec.outputs())
    for (std::uint32_t m = 0; m < f.size(); ++m) {
      if (rng.flip(dc_prob))
        f.set_phase(m, Phase::kDc);
      else
        f.set_phase(m, rng.flip(0.5) ? Phase::kOne : Phase::kZero);
    }
  return spec;
}

/// Replaces every "total_ms"/"wall_ms" value with 0 so report documents
/// compare byte-for-byte across runs.
std::string strip_timings(std::string json) {
  for (const std::string key : {"\"total_ms\": ", "\"wall_ms\": "}) {
    std::size_t at = 0;
    while ((at = json.find(key, at)) != std::string::npos) {
      const std::size_t begin = at + key.size();
      std::size_t end = begin;
      while (end < json.size() && json[end] != ',' && json[end] != '}' &&
             json[end] != '\n')
        ++end;
      json.replace(begin, end - begin, "0");
      at = begin;
    }
  }
  return json;
}

struct ChaosGuard {
  explicit ChaosGuard(const std::string& spec) {
    exec::testing::set_chaos_spec(spec);
  }
  ~ChaosGuard() { exec::testing::set_chaos_spec(""); }
};

/// Captures events + counters for one test and restores the globals.
struct ObsCapture {
  ObsCapture() {
    exec::testing::reset_shutdown();
    obs::set_events_capture(true);
    obs::drain_events();
    obs::set_counters_enabled(true);
    obs::reset_counters();
  }
  ~ObsCapture() {
    obs::set_events_capture(false);
    obs::set_counters_enabled(false);
  }
  /// Lines whose "event" field equals `name`.
  static std::size_t count_events(const std::vector<std::string>& lines,
                                  const std::string& name) {
    const std::string needle = "\"event\": \"" + name + "\"";
    std::size_t hits = 0;
    for (const std::string& line : lines)
      if (line.find(needle) != std::string::npos) ++hits;
    return hits;
  }
};

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + stem;
}

exec::SupervisedJob ok_job(std::uint64_t key, const std::string& name,
                           const std::string& payload) {
  exec::SupervisedJob job;
  job.key = key;
  job.name = name;
  job.run = [payload](std::string& out) {
    out = payload;
    return exec::Status();
  };
  return job;
}

// --- chaos grammar and decisions ------------------------------------------

TEST(Chaos, ParsesRulesAndRejectsGarbage) {
  auto spec = exec::parse_chaos_spec("kill:0.3,oom:0.5@2,hang:1");
  ASSERT_TRUE(spec.ok()) << spec.status().to_string();
  ASSERT_EQ(spec->rules.size(), 3u);
  EXPECT_EQ(spec->rules[0].action, exec::ChaosAction::kKill);
  EXPECT_DOUBLE_EQ(spec->rules[0].probability, 0.3);
  EXPECT_EQ(spec->rules[0].attempt, 0);
  EXPECT_EQ(spec->rules[1].action, exec::ChaosAction::kOom);
  EXPECT_EQ(spec->rules[1].attempt, 2);
  EXPECT_EQ(spec->rules[2].action, exec::ChaosAction::kHang);

  for (const char* bad : {"explode:0.5", "kill:1.5", "kill:-0.1", "kill",
                          "kill:0.5@0", "kill:0.5@x", ":0.5", "kill:"}) {
    auto result = exec::parse_chaos_spec(bad);
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(Chaos, DecisionsAreDeterministicPerJobAndAttempt) {
  {
    ChaosGuard guard("segv:1@2");
    EXPECT_TRUE(exec::chaos_armed());
    EXPECT_EQ(exec::chaos_decide(42, 1), exec::ChaosAction::kNone);
    EXPECT_EQ(exec::chaos_decide(42, 2), exec::ChaosAction::kSegv);
    EXPECT_EQ(exec::chaos_decide(42, 3), exec::ChaosAction::kNone);
  }
  {
    ChaosGuard guard("kill:0.5");
    // Pure function of (key, attempt): repeated calls agree, and over many
    // keys the firing fraction tracks the probability.
    std::size_t fired = 0;
    for (std::uint64_t key = 0; key < 1000; ++key) {
      const exec::ChaosAction first = exec::chaos_decide(key, 1);
      EXPECT_EQ(exec::chaos_decide(key, 1), first);
      if (first == exec::ChaosAction::kKill) ++fired;
    }
    EXPECT_GT(fired, 350u);
    EXPECT_LT(fired, 650u);
  }
  EXPECT_FALSE(exec::chaos_armed());
  EXPECT_EQ(exec::chaos_decide(42, 1), exec::ChaosAction::kNone);
}

// --- journal ---------------------------------------------------------------

TEST(Journal, WriterRoundTripsThroughReplay) {
  const std::string path = temp_path("supervisor_journal_roundtrip.jsonl");
  exec::JournalWriter writer;
  ASSERT_TRUE(writer.open(path, /*truncate=*/true).ok());

  exec::JournalRecord record;
  record.job = "00000000deadbeef";
  record.name = "c1";
  record.state = "pending";
  ASSERT_TRUE(writer.append(record).ok());
  record.state = "running";
  record.attempt = 1;
  ASSERT_TRUE(writer.append(record).ok());
  record.state = "done";
  record.status = "OK";
  record.row = "{\"name\": \"c1\", \"gates\": 5}";
  ASSERT_TRUE(writer.append(record).ok());
  writer.close();

  auto replay = exec::replay_journal_file(path);
  ASSERT_TRUE(replay.ok()) << replay.status().to_string();
  EXPECT_EQ(replay->records, 3u);
  EXPECT_EQ(replay->malformed, 0u);
  EXPECT_EQ(replay->last_seq, 3u);
  EXPECT_EQ(replay->duplicate_terminal, 0u);
  ASSERT_EQ(replay->jobs.size(), 1u);
  const auto& job = replay->jobs.at("00000000deadbeef");
  EXPECT_EQ(job.name, "c1");
  EXPECT_EQ(job.state, "done");
  EXPECT_EQ(job.status, "OK");
  EXPECT_EQ(job.attempt, 1);
  EXPECT_EQ(job.terminal_records, 1);
  // The row's exact bytes survive the JSON-string encoding round trip.
  EXPECT_EQ(job.row, "{\"name\": \"c1\", \"gates\": 5}");
}

TEST(Journal, StateTaxonomy) {
  EXPECT_FALSE(exec::journal_state_is_terminal("pending"));
  EXPECT_FALSE(exec::journal_state_is_terminal("running"));
  EXPECT_TRUE(exec::journal_state_is_terminal("done"));
  EXPECT_TRUE(exec::journal_state_is_terminal("failed"));
}

TEST(Journal, ReplayToleratesTruncationAndGarbage) {
  exec::JournalRecord record;
  record.seq = 1;
  record.job = "aaaaaaaaaaaaaaaa";
  record.name = "c1";
  record.state = "running";
  record.attempt = 1;
  const std::string valid = exec::journal_record_to_json(record);
  const std::string text = valid + "\nnot json at all\n" +
                           valid.substr(0, valid.size() / 2);
  const exec::JournalReplay replay = exec::replay_journal_text(text);
  EXPECT_EQ(replay.records, 1u);
  EXPECT_EQ(replay.malformed, 2u);
  ASSERT_EQ(replay.jobs.size(), 1u);
  // The job replays as non-terminal, so a resume re-runs it.
  EXPECT_EQ(replay.jobs.at("aaaaaaaaaaaaaaaa").state, "running");
  EXPECT_EQ(replay.jobs.at("aaaaaaaaaaaaaaaa").terminal_records, 0);
}

TEST(Journal, DuplicateTerminalIsAuditedFirstWins) {
  exec::JournalRecord record;
  record.job = "bbbbbbbbbbbbbbbb";
  record.name = "c2";
  record.state = "done";
  record.attempt = 1;
  record.status = "OK";
  record.row = "{\"name\": \"c2\"}";
  record.seq = 1;
  std::string text = exec::journal_record_to_json(record) + "\n";
  record.seq = 2;
  record.state = "failed";
  record.status = "INTERNAL";
  record.error = "should not win";
  text += exec::journal_record_to_json(record) + "\n";

  const exec::JournalReplay replay = exec::replay_journal_text(text);
  EXPECT_EQ(replay.duplicate_terminal, 1u);
  const auto& job = replay.jobs.at("bbbbbbbbbbbbbbbb");
  EXPECT_EQ(job.terminal_records, 2);
  // First terminal record wins; the later one never downgrades it.
  EXPECT_EQ(job.status, "OK");
  EXPECT_EQ(job.row, "{\"name\": \"c2\"}");
}

TEST(Journal, MissingFileIsUnavailable) {
  auto replay = exec::replay_journal_file(temp_path("no_such_journal.jsonl"));
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kUnavailable);
}

// --- supervisor ------------------------------------------------------------

TEST(Supervisor, RoundTripsPayloadsAcrossThePipe) {
  exec::testing::reset_shutdown();
  std::vector<exec::SupervisedJob> jobs;
  for (int i = 0; i < 3; ++i)
    jobs.push_back(ok_job(100 + i, "job" + std::to_string(i),
                          "payload-" + std::to_string(i)));
  exec::SupervisorOptions options;
  options.max_parallel = 2;
  std::size_t done_calls = 0;
  const exec::SupervisorResult result = exec::run_supervised(
      jobs, options, [&](const exec::JobOutcome&) { ++done_calls; });

  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(done_calls, 3u);
  ASSERT_EQ(result.outcomes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const exec::JobOutcome& outcome = result.outcomes[i];
    EXPECT_EQ(outcome.index, i);
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.to_string();
    EXPECT_EQ(outcome.payload, "payload-" + std::to_string(i));
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_TRUE(outcome.ran);
    EXPECT_FALSE(outcome.crashed);
  }
}

TEST(Supervisor, CleanFailuresNeverRetry) {
  exec::testing::reset_shutdown();
  std::vector<exec::SupervisedJob> jobs(1);
  jobs[0].key = 7;
  jobs[0].name = "invalid";
  jobs[0].run = [](std::string&) {
    return exec::Status(StatusCode::kInvalidArgument, "bad knob");
  };
  exec::SupervisorOptions options;
  options.retry.max_attempts = 3;
  options.retry.base_backoff_ms = 1.0;
  const exec::SupervisorResult result = exec::run_supervised(jobs, options);
  EXPECT_EQ(result.failed, 1u);
  const exec::JobOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(outcome.attempts, 1);  // deterministic failure: no retry
  EXPECT_FALSE(outcome.crashed);
  EXPECT_FALSE(exec::outcome_is_transient(outcome));
}

TEST(Supervisor, SegfaultBecomesInternalRowNotBatchDeath) {
  ObsCapture capture;
  ChaosGuard chaos("segv:1@1");
  std::vector<exec::SupervisedJob> jobs;
  jobs.push_back(ok_job(11, "victim1", "x"));
  jobs.push_back(ok_job(12, "victim2", "y"));
  const exec::SupervisorResult result =
      exec::run_supervised(jobs, exec::SupervisorOptions{});

  EXPECT_EQ(result.failed, 2u);
  for (const exec::JobOutcome& outcome : result.outcomes) {
    EXPECT_EQ(outcome.status.code(), StatusCode::kInternal);
    EXPECT_TRUE(outcome.crashed);
    EXPECT_EQ(outcome.term_signal, SIGSEGV);
    EXPECT_TRUE(exec::outcome_is_transient(outcome));
  }
  EXPECT_EQ(obs::counter_total(obs::Counter::kSupervisorCrashes), 2u);
  const std::vector<std::string> events = obs::drain_events();
  EXPECT_EQ(ObsCapture::count_events(events, "job.spawn"), 2u);
  EXPECT_EQ(ObsCapture::count_events(events, "job.crash"), 2u);
}

TEST(Supervisor, TransientCrashSucceedsOnRetry) {
  ObsCapture capture;
  ChaosGuard chaos("kill:1@1");  // every first attempt dies; retries run
  std::vector<exec::SupervisedJob> jobs;
  jobs.push_back(ok_job(21, "flaky", "recovered"));
  exec::SupervisorOptions options;
  options.retry.max_attempts = 2;
  options.retry.base_backoff_ms = 1.0;
  const exec::SupervisorResult result = exec::run_supervised(jobs, options);

  EXPECT_EQ(result.completed, 1u);
  const exec::JobOutcome& outcome = result.outcomes[0];
  EXPECT_TRUE(outcome.status.ok()) << outcome.status.to_string();
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.payload, "recovered");
  EXPECT_EQ(obs::counter_total(obs::Counter::kSupervisorRetries), 1u);
  const std::vector<std::string> events = obs::drain_events();
  EXPECT_EQ(ObsCapture::count_events(events, "retry.attempt"), 1u);
  EXPECT_EQ(ObsCapture::count_events(events, "job.spawn"), 2u);
}

TEST(Supervisor, HangHitsTheWallWatchdog) {
  exec::testing::reset_shutdown();
  ChaosGuard chaos("hang:1@1");
  std::vector<exec::SupervisedJob> jobs;
  jobs.push_back(ok_job(31, "sleeper", "never"));
  exec::SupervisorOptions options;
  options.limits.wall_ms = 250.0;
  const exec::SupervisorResult result = exec::run_supervised(jobs, options);

  const exec::JobOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(outcome.timed_out);
  EXPECT_TRUE(exec::outcome_is_transient(outcome));
}

TEST(Supervisor, OomBecomesResourceExhausted) {
  exec::testing::reset_shutdown();
  ChaosGuard chaos("oom:1@1");
  std::vector<exec::SupervisedJob> jobs;
  jobs.push_back(ok_job(41, "hog", "never"));
  exec::SupervisorOptions options;
  options.limits.max_rss_bytes = 256ull << 20;
  const exec::SupervisorResult result = exec::run_supervised(jobs, options);

  const exec::JobOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted)
      << outcome.status.to_string();
  EXPECT_TRUE(exec::outcome_is_transient(outcome));
}

TEST(Supervisor, MaxCompletionsInterruptsDeterministically) {
  exec::testing::reset_shutdown();
  std::vector<exec::SupervisedJob> jobs;
  for (int i = 0; i < 4; ++i)
    jobs.push_back(ok_job(50 + i, "job" + std::to_string(i), "p"));
  exec::SupervisorOptions options;
  options.max_completions = 2;
  const exec::SupervisorResult result = exec::run_supervised(jobs, options);

  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.completed, 2u);
  EXPECT_EQ(result.skipped, 2u);
  std::size_t unran = 0;
  for (const exec::JobOutcome& outcome : result.outcomes)
    if (!outcome.ran) ++unran;
  EXPECT_EQ(unran, 2u);
}

TEST(Supervisor, JobKeyHexIsStable) {
  EXPECT_EQ(exec::job_key_hex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(exec::job_key_hex(0), "0000000000000000");
}

// --- supervised batch ------------------------------------------------------

TEST(SupervisedBatch, JobKeysAreStableAndSalted) {
  const IncompleteSpec spec = builtin_spec();
  flow::BatchOptions options;
  const std::uint64_t key =
      flow::batch_job_key(spec, "espresso", options);
  EXPECT_EQ(flow::batch_job_key(spec, "espresso", options), key);
  EXPECT_NE(flow::batch_job_key(spec, "espresso", options, 1), key);
  EXPECT_NE(flow::batch_job_key(spec, "espresso | factor", options), key);
  flow::BatchOptions other = options;
  other.flow.ranking_fraction = 0.25;
  EXPECT_NE(flow::batch_job_key(spec, "espresso", other), key);
  other = options;
  other.budget.deadline_ms = 1000.0;
  EXPECT_NE(flow::batch_job_key(spec, "espresso", other), key);
}

TEST(SupervisedBatch, RejectsUnparsablePipelineAtBatchLevel) {
  std::vector<IncompleteSpec> specs;
  specs.push_back(builtin_spec());
  auto result = flow::run_pipeline_batch_supervised(
      "definitely not a pass |", specs, flow::SupervisedBatchOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SupervisedBatch, ResumedRunReproducesUninterruptedReport) {
  exec::testing::reset_shutdown();
  Rng rng(23);
  std::vector<IncompleteSpec> specs;
  specs.push_back(builtin_spec());
  specs.push_back(random_spec(5, 2, 0.4, rng, "rand5"));
  const std::string pipeline =
      "assign:ranking(0.5) | espresso | factor | aig | map:power";

  // Reference: one uninterrupted supervised run.
  flow::SupervisedBatchOptions options;
  options.journal_path = temp_path("supervisor_batch_a.journal");
  auto full = flow::run_pipeline_batch_supervised(pipeline, specs, options);
  ASSERT_TRUE(full.ok()) << full.status().to_string();
  EXPECT_EQ(full->failures, 0u);
  EXPECT_EQ(full->executed, 2u);
  EXPECT_FALSE(full->interrupted);

  // Interrupted run: stop after the first completion...
  options.journal_path = temp_path("supervisor_batch_b.journal");
  options.max_completions = 1;
  auto part = flow::run_pipeline_batch_supervised(pipeline, specs, options);
  ASSERT_TRUE(part.ok()) << part.status().to_string();
  EXPECT_TRUE(part->interrupted);
  EXPECT_EQ(part->executed, 1u);
  EXPECT_EQ(part->skipped, 1u);

  // ...then resume from the journal and finish.
  options.max_completions = 0;
  options.resume = true;
  auto resumed =
      flow::run_pipeline_batch_supervised(pipeline, specs, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_FALSE(resumed->interrupted);
  EXPECT_EQ(resumed->resumed, 1u);
  EXPECT_EQ(resumed->executed, 1u);
  EXPECT_EQ(resumed->failures, 0u);

  // The stitched report matches the uninterrupted one byte-for-byte
  // modulo wall-clock values.
  EXPECT_EQ(strip_timings(resumed->report.to_json()),
            strip_timings(full->report.to_json()));

  // Journal audit: every job reached exactly one terminal state.
  auto replay = exec::replay_journal_file(options.journal_path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->duplicate_terminal, 0u);
  ASSERT_EQ(replay->jobs.size(), 2u);
  for (const auto& [key, job] : replay->jobs) {
    EXPECT_EQ(job.terminal_records, 1) << key;
    EXPECT_EQ(job.state, "done") << key;
    EXPECT_FALSE(job.row.empty()) << key;
  }
}

TEST(SupervisedBatch, CrashedCircuitIsARowWhileNeighborsComplete) {
  ObsCapture capture;
  ChaosGuard chaos("segv:1@1");
  Rng rng(29);
  std::vector<IncompleteSpec> specs;
  specs.push_back(builtin_spec());
  specs.push_back(random_spec(5, 1, 0.5, rng, "rand5"));

  flow::SupervisedBatchOptions options;
  // Chaos fires per (job, attempt); with two attempts and segv pinned to
  // attempt 1, every circuit crashes once and then completes.
  options.retry.max_attempts = 2;
  options.retry.base_backoff_ms = 1.0;
  auto result = flow::run_pipeline_batch_supervised(
      "assign:conventional | espresso", specs, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->failures, 0u);
  EXPECT_EQ(result->executed, 2u);
  EXPECT_GE(obs::counter_total(obs::Counter::kSupervisorCrashes), 2u);
  EXPECT_GE(obs::counter_total(obs::Counter::kSupervisorRetries), 2u);

  // Rows carry the retry attempt count; both recovered to OK.
  std::string error;
  const auto parsed = obs::parse_json(result->report.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const obs::JsonValue* rows = parsed->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 2u);
  for (const obs::JsonValue& row : rows->array) {
    EXPECT_EQ(row.find("status")->string, "OK");
    ASSERT_NE(row.find("attempts"), nullptr);
    EXPECT_EQ(row.find("attempts")->number, 2.0);
  }
}

}  // namespace
}  // namespace rdc
