// Small statistics helpers used by the reliability estimates (Section 5 of
// the paper) and by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>

namespace rdc {

/// Summary of a sample: min / max / mean, as reported in the paper's
/// Figure 5 ("normalized min, max, and mean ... across all benchmarks").
///
/// Empty-sample contract: summarize({}) returns count == 0 with min, max
/// and mean zero. The zeros carry no statistical meaning — an all-zero
/// sample also summarizes to zeros — so consumers that can receive empty
/// input (the obs report/summary layer, histogram printers) must branch on
/// count (or empty()) before trusting the moments. This is deliberate:
/// NaN poisoning would leak into printed tables, and throwing would force
/// every aggregation loop to pre-check.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;

  /// True iff the sample had no values; min/max/mean are then meaningless.
  bool empty() const { return count == 0; }
};

/// Computes min/max/mean of a sample; see Summary for the empty contract.
Summary summarize(std::span<const double> values);

/// Standard normal probability density function.
double normal_pdf(double x);

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// E|Z| for Z ~ N(mu, sigma^2) (mean of the folded normal distribution).
double folded_normal_mean(double mu, double sigma);

/// Poisson probability mass P(k; lambda) = lambda^k e^-lambda / k!.
/// Computed in log space for robustness at large k/lambda.
double poisson_pmf(unsigned k, double lambda);

}  // namespace rdc
