// CI perf-regression gate: compares two rdc.bench.report.v1 files and
// fails when any matched benchmark row got slower than the noise
// threshold allows. scripts/check.sh runs an identity diff (same file
// twice at --threshold 0) as a self-check and a synthetic regressed
// fixture that must fail.
//
// Usage: rdc_perf_diff <baseline.json> <candidate.json> [--threshold PCT]
// Exit:  0 no regression, 1 regression found, 2 unusable input/usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/perf_diff.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <candidate.json> [--threshold PCT]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  rdc::obs::PerfDiffOptions options;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      char* end = nullptr;
      options.threshold_pct = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || options.threshold_pct < 0.0) {
        std::fprintf(stderr, "rdc_perf_diff: bad threshold '%s'\n", argv[i]);
        return 2;
      }
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (candidate_path == nullptr) {
      candidate_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr)
    return usage(argv[0]);

  std::string baseline_json, candidate_json;
  if (!read_file(baseline_path, baseline_json)) {
    std::fprintf(stderr, "rdc_perf_diff: cannot read %s\n", baseline_path);
    return 2;
  }
  if (!read_file(candidate_path, candidate_json)) {
    std::fprintf(stderr, "rdc_perf_diff: cannot read %s\n", candidate_path);
    return 2;
  }

  const rdc::obs::PerfDiffResult result =
      rdc::obs::diff_reports(baseline_json, candidate_json, options);
  const std::string table = rdc::obs::format_perf_diff(result, options);
  std::fputs(table.c_str(), result.parse_ok ? stdout : stderr);
  if (!result.parse_ok) return 2;
  return result.has_regression() ? 1 : 0;
}
