#include "pla/pla_io.hpp"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "espresso/espresso.hpp"
#include "pla/cover.hpp"

namespace rdc {
namespace {

enum class PlaType { kF, kFd, kFr, kFdr };

PlaType parse_type(const std::string& t, unsigned line) {
  if (t == "f") return PlaType::kF;
  if (t == "fd") return PlaType::kFd;
  if (t == "fr") return PlaType::kFr;
  if (t == "fdr") return PlaType::kFdr;
  throw std::runtime_error("pla line " + std::to_string(line) +
                           ": unsupported .type " + t);
}

[[noreturn]] void fail(unsigned line, const std::string& what) {
  throw std::runtime_error("pla line " + std::to_string(line) + ": " + what);
}

struct RawPla {
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  PlaType type = PlaType::kFd;
  // Per-output covers accumulated from the cube rows.
  std::vector<std::vector<Cube>> on, off, dc;
};

/// Each output costs three 2^n-minterm bitsets downstream; this cap keeps a
/// hostile ".o 4000000000" header a parse error instead of an allocation
/// bomb while staying far above any real benchmark (Table 1 tops out at 8).
constexpr unsigned kMaxPlaOutputs = 256;

RawPla read_raw(std::istream& in) {
  RawPla pla;
  bool sized = false;
  unsigned line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;

    if (tok == ".i") {
      // Once cube rows were parsed against one geometry, changing it would
      // silently misalign every row already read.
      if (sized) fail(line_no, ".i after cube rows");
      if (!(ls >> pla.num_inputs)) fail(line_no, "missing .i value");
      if (pla.num_inputs == 0 || pla.num_inputs > TernaryTruthTable::kMaxInputs)
        fail(line_no, ".i out of supported range [1,20]");
    } else if (tok == ".o") {
      if (sized) fail(line_no, ".o after cube rows");
      if (!(ls >> pla.num_outputs)) fail(line_no, "missing .o value");
      if (pla.num_outputs == 0) fail(line_no, ".o must be positive");
      if (pla.num_outputs > kMaxPlaOutputs)
        fail(line_no, ".o exceeds limit of " +
                          std::to_string(kMaxPlaOutputs));
    } else if (tok == ".type") {
      std::string t;
      if (!(ls >> t)) fail(line_no, "missing .type value");
      pla.type = parse_type(t, line_no);
    } else if (tok == ".p" || tok == ".ilb" || tok == ".ob" ||
               tok == ".phase" || tok == ".pair") {
      continue;  // informational / unsupported-but-harmless directives
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      fail(line_no, "unsupported directive " + tok);
    } else {
      // Cube row: input part then output part (possibly whitespace-joined).
      if (pla.num_inputs == 0 || pla.num_outputs == 0)
        fail(line_no, "cube row before .i/.o");
      if (!sized) {
        pla.on.resize(pla.num_outputs);
        pla.off.resize(pla.num_outputs);
        pla.dc.resize(pla.num_outputs);
        sized = true;
      }
      std::string rest;
      std::string part;
      std::string row = tok;
      while (ls >> part) row += part;
      if (row.size() != pla.num_inputs + pla.num_outputs)
        fail(line_no, "row width " + std::to_string(row.size()) +
                          " != .i + .o = " +
                          std::to_string(pla.num_inputs + pla.num_outputs));
      Cube input;
      try {
        input = Cube::parse(row.substr(0, pla.num_inputs));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      for (unsigned o = 0; o < pla.num_outputs; ++o) {
        const char c = row[pla.num_inputs + o];
        switch (c) {
          case '1':
          case '4':
            pla.on[o].push_back(input);
            break;
          case '0':
            // In f/fd types '0' means "no statement about this output".
            if (pla.type == PlaType::kFr || pla.type == PlaType::kFdr)
              pla.off[o].push_back(input);
            break;
          case '-':
          case '2':
            if (pla.type == PlaType::kFd || pla.type == PlaType::kFdr)
              pla.dc[o].push_back(input);
            break;
          case '~':
          case '3':
            break;  // no statement
          default:
            fail(line_no, std::string("bad output character '") + c + "'");
        }
      }
    }
  }
  if (pla.num_inputs == 0 || pla.num_outputs == 0)
    throw std::runtime_error("pla: missing .i/.o header");
  if (!sized) {
    pla.on.resize(pla.num_outputs);
    pla.off.resize(pla.num_outputs);
    pla.dc.resize(pla.num_outputs);
  }
  return pla;
}

}  // namespace

IncompleteSpec parse_pla(std::istream& in, std::string name) {
  const RawPla pla = read_raw(in);
  IncompleteSpec spec(std::move(name), pla.num_inputs, pla.num_outputs);
  const std::uint32_t size = num_minterms(pla.num_inputs);
  for (unsigned o = 0; o < pla.num_outputs; ++o) {
    const Cover on(pla.num_inputs, pla.on[o]);
    const Cover off(pla.num_inputs, pla.off[o]);
    const Cover dc(pla.num_inputs, pla.dc[o]);
    TernaryTruthTable& tt = spec.output(o);
    for (std::uint32_t m = 0; m < size; ++m) {
      // Background phase depends on which covers the type makes explicit.
      Phase p = (pla.type == PlaType::kFr) ? Phase::kDc : Phase::kZero;
      if (pla.type != PlaType::kFr && dc.covers_minterm(m)) p = Phase::kDc;
      if (pla.type == PlaType::kFr && off.covers_minterm(m)) p = Phase::kZero;
      if (pla.type == PlaType::kFdr) {
        if (dc.covers_minterm(m)) p = Phase::kDc;
        if (off.covers_minterm(m)) p = Phase::kZero;
      }
      if (on.covers_minterm(m)) p = Phase::kOne;  // ON wins over overlaps
      tt.set_phase(m, p);
    }
  }
  return spec;
}

IncompleteSpec parse_pla_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return parse_pla(in, std::move(name));
}

IncompleteSpec load_pla(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return parse_pla(in, path.stem().string());
}

void write_pla(const IncompleteSpec& spec, std::ostream& out) {
  out << "# " << spec.name() << " — written by rdcsyn\n";
  out << ".i " << spec.num_inputs() << "\n";
  out << ".o " << spec.num_outputs() << "\n";
  out << ".type fd\n";

  // One row per minterm that is ON or DC for at least one output.
  std::vector<std::string> rows;
  const std::uint32_t size = num_minterms(spec.num_inputs());
  for (std::uint32_t m = 0; m < size; ++m) {
    std::string outs;
    bool interesting = false;
    for (unsigned o = 0; o < spec.num_outputs(); ++o) {
      switch (spec.output(o).phase(m)) {
        case Phase::kOne:
          outs.push_back('1');
          interesting = true;
          break;
        case Phase::kDc:
          outs.push_back('-');
          interesting = true;
          break;
        case Phase::kZero:
          outs.push_back('0');
          break;
      }
    }
    if (!interesting) continue;
    rows.push_back(Cube::minterm(m, spec.num_inputs()).to_string(
                       spec.num_inputs()) +
                   " " + outs);
  }
  out << ".p " << rows.size() << "\n";
  for (const auto& r : rows) out << r << "\n";
  out << ".e\n";
}

namespace {

/// Minimized cover of exactly the `phase` set (no absorption of other
/// phases, so write->parse round trips are exact).
Cover exact_phase_cover(const TernaryTruthTable& f, Phase phase) {
  TernaryTruthTable g(f.num_inputs());
  for (std::uint32_t m = 0; m < f.size(); ++m)
    if (f.phase(m) == phase) g.set_phase(m, Phase::kOne);
  return minimize(g);
}

}  // namespace

void write_pla_compact(const IncompleteSpec& spec, std::ostream& out) {
  // Row map: input part -> output column characters.
  std::map<std::string, std::string> rows;
  const std::string blank(spec.num_outputs(), '0');
  for (unsigned o = 0; o < spec.num_outputs(); ++o) {
    const TernaryTruthTable& f = spec.output(o);
    // Bind the covers: a range-for over `temporary.cubes()` would iterate
    // a dangling vector in C++20.
    const Cover on = exact_phase_cover(f, Phase::kOne);
    const Cover dc = exact_phase_cover(f, Phase::kDc);
    for (const Cube& c : on.cubes()) {
      auto [it, unused] =
          rows.try_emplace(c.to_string(spec.num_inputs()), blank);
      it->second[o] = '1';
    }
    for (const Cube& c : dc.cubes()) {
      auto [it, unused] =
          rows.try_emplace(c.to_string(spec.num_inputs()), blank);
      it->second[o] = '-';
    }
  }

  out << "# " << spec.name() << " — written by rdcsyn (compact)\n";
  out << ".i " << spec.num_inputs() << "\n";
  out << ".o " << spec.num_outputs() << "\n";
  out << ".type fd\n";
  out << ".p " << rows.size() << "\n";
  for (const auto& [input, outputs] : rows)
    out << input << " " << outputs << "\n";
  out << ".e\n";
}

void save_pla(const IncompleteSpec& spec, const std::filesystem::path& path) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  write_pla(spec, out);
}

}  // namespace rdc
