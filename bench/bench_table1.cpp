// Reproduces Table 1 of the paper: published and synthetic benchmark
// properties — inputs, outputs, %DC, expected complexity factor E[C^f] and
// actual complexity factor C^f.
//
// The "paper" columns are the published values the synthetic stand-ins were
// generated to match (see DESIGN.md §3); the "ours" columns are measured on
// the regenerated functions.
#include <cstdio>

#include "bench_util.hpp"
#include "reliability/complexity.hpp"

int main() {
  using namespace rdc;
  bench::heading("Table 1: Published and synthetic benchmark properties");
  std::printf("%-8s %3s %3s | %6s %6s | %6s %6s | %6s %6s\n", "Name", "i",
              "o", "%DC", "paper", "E[C^f]", "paper", "C^f", "paper");
  std::printf("---------------------------------------------------------------\n");
  for (const BenchmarkInfo& info : table1_info()) {
    const IncompleteSpec spec = make_benchmark(info);
    std::printf("%-8s %3u %3u | %6.1f %6.1f | %6.3f %6.3f | %6.3f %6.3f\n",
                spec.name().c_str(), spec.num_inputs(), spec.num_outputs(),
                spec.dc_fraction() * 100.0, info.dc_percent,
                expected_complexity_factor(spec), info.expected_cf,
                complexity_factor(spec), info.target_cf);
  }
  bench::note(
      "\nEach row is a deterministic synthetic stand-in matching the MCNC\n"
      "benchmark's published signature (inputs, outputs, %DC, E[C^f], C^f).");
  return 0;
}
