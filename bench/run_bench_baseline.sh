#!/usr/bin/env bash
# Snapshots the kernel-layer microbenchmarks into BENCH_kernels.json so
# future PRs can track the perf trajectory of the word-parallel kernels
# against their scalar references.
#
# Usage: bench/run_bench_baseline.sh [build-dir] [output-json]
# Defaults: build-dir = build, output = BENCH_kernels.json (repo root).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
output="${2:-$repo_root/BENCH_kernels.json}"

bench_micro="$build_dir/bench/bench_micro"
if [[ ! -x "$bench_micro" ]]; then
  echo "bench_micro not found at $bench_micro — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target bench_micro" >&2
  exit 1
fi

"$bench_micro" \
  --benchmark_filter='BM_(ExactErrorRate|ExactErrorRateScalar|NeighborTable|NeighborTableScalar|ComplexityFactor|ComplexityFactorScalar|ErrorRateKbit)(/|$)' \
  --benchmark_out="$output" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1

echo
echo "Kernel benchmark snapshot written to $output"

# Report the headline word-parallel vs scalar speedups when python3 is
# around (informational only; the JSON is the artifact).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$output" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    data = json.load(fh)
times = {b["name"]: b["real_time"] for b in data["benchmarks"]}
print("\nword-parallel speedup over scalar reference:")
for kernel in ("BM_ExactErrorRate", "BM_NeighborTable", "BM_ComplexityFactor"):
    for arg in (8, 10, 12, 14, 16, 20):
        fast = times.get(f"{kernel}/{arg}")
        slow = times.get(f"{kernel}Scalar/{arg}")
        if fast and slow:
            print(f"  {kernel}/{arg}: {slow / fast:.1f}x")
EOF
fi
