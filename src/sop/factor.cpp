#include "sop/factor.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/bits.hpp"
#include "sop/division.hpp"
#include "sop/kernel.hpp"

namespace rdc {
namespace {

FactorTree cube_to_tree(const Cube& c, unsigned n) {
  std::vector<FactorTree> literals;
  for (unsigned v = 0; v < n; ++v) {
    const bool has0 = test_bit(c.mask0, v);
    const bool has1 = test_bit(c.mask1, v);
    if (has0 != has1) literals.push_back(FactorTree::literal(v, has1));
  }
  if (literals.empty()) return FactorTree::constant(true);
  if (literals.size() == 1) return literals.front();
  FactorTree t;
  t.kind = FactorTree::Kind::kAnd;
  t.children = std::move(literals);
  return t;
}

FactorTree make_or(std::vector<FactorTree> children) {
  if (children.empty()) return FactorTree::constant(false);
  if (children.size() == 1) return std::move(children.front());
  FactorTree t;
  t.kind = FactorTree::Kind::kOr;
  t.children = std::move(children);
  return t;
}

FactorTree make_and(std::vector<FactorTree> children) {
  if (children.empty()) return FactorTree::constant(true);
  if (children.size() == 1) return std::move(children.front());
  FactorTree t;
  t.kind = FactorTree::Kind::kAnd;
  t.children = std::move(children);
  return t;
}

/// Most frequent literal (>= 2 occurrences), or nullopt.
std::optional<std::pair<unsigned, bool>> best_literal(const Cover& f) {
  const unsigned n = f.num_inputs();
  std::optional<std::pair<unsigned, bool>> best;
  unsigned best_freq = 1;
  for (unsigned v = 0; v < n; ++v) {
    unsigned freq0 = 0;
    unsigned freq1 = 0;
    for (const Cube& c : f.cubes()) {
      const bool has0 = test_bit(c.mask0, v);
      const bool has1 = test_bit(c.mask1, v);
      if (has0 == has1) continue;
      if (has1)
        ++freq1;
      else
        ++freq0;
    }
    if (freq0 > best_freq) {
      best_freq = freq0;
      best = {v, false};
    }
    if (freq1 > best_freq) {
      best_freq = freq1;
      best = {v, true};
    }
  }
  return best;
}

FactorTree factor_rec(const Cover& f) {
  const unsigned n = f.num_inputs();
  if (f.empty_cover()) return FactorTree::constant(false);
  if (f.size() == 1) return cube_to_tree(f.cube(0), n);

  // Pull out the common cube first: F = cc * F'.
  const Cube cc = common_cube(f);
  if (cc != Cube::full(n)) {
    std::vector<FactorTree> parts;
    parts.push_back(cube_to_tree(cc, n));
    parts.push_back(factor_rec(make_cube_free(f)));
    return make_and(std::move(parts));
  }

  // Prefer a multi-cube kernel divisor when one saves literals; fall back
  // to the most frequent literal; fall back to a flat OR.
  const auto lit = best_literal(f);
  if (!lit) {
    std::vector<FactorTree> cubes;
    cubes.reserve(f.size());
    for (const Cube& c : f.cubes()) cubes.push_back(cube_to_tree(c, n));
    return make_or(std::move(cubes));
  }

  // Candidate kernel divisor: the level-0 kernel of the quotient by the
  // best literal often captures a shared multi-cube factor.
  const DivisionResult by_lit =
      divide_by_literal(f, lit->first, lit->second);
  Cover divisor(n);
  const Cover k = level0_kernel(by_lit.quotient);
  if (k.size() >= 2) {
    const DivisionResult by_kernel = weak_divide(f, k);
    if (by_kernel.quotient.size() >= 2) {
      std::vector<FactorTree> product;
      product.push_back(factor_rec(by_kernel.quotient));
      product.push_back(factor_rec(k));
      std::vector<FactorTree> sum;
      sum.push_back(make_and(std::move(product)));
      if (!by_kernel.remainder.empty_cover())
        sum.push_back(factor_rec(by_kernel.remainder));
      return make_or(std::move(sum));
    }
  }

  std::vector<FactorTree> product;
  product.push_back(FactorTree::literal(lit->first, lit->second));
  product.push_back(factor_rec(by_lit.quotient));
  std::vector<FactorTree> sum;
  sum.push_back(make_and(std::move(product)));
  if (!by_lit.remainder.empty_cover())
    sum.push_back(factor_rec(by_lit.remainder));
  return make_or(std::move(sum));
}

}  // namespace

FactorTree factor(const Cover& f) { return factor_rec(f); }

std::uint64_t factored_literal_count(const FactorTree& tree) {
  switch (tree.kind) {
    case FactorTree::Kind::kConst0:
    case FactorTree::Kind::kConst1:
      return 0;
    case FactorTree::Kind::kLiteral:
      return 1;
    case FactorTree::Kind::kAnd:
    case FactorTree::Kind::kOr: {
      std::uint64_t total = 0;
      for (const FactorTree& child : tree.children)
        total += factored_literal_count(child);
      return total;
    }
  }
  return 0;
}

std::string to_string(const FactorTree& tree) {
  switch (tree.kind) {
    case FactorTree::Kind::kConst0:
      return "0";
    case FactorTree::Kind::kConst1:
      return "1";
    case FactorTree::Kind::kLiteral:
      return (tree.positive ? "x" : "!x") + std::to_string(tree.var);
    case FactorTree::Kind::kAnd:
    case FactorTree::Kind::kOr: {
      const char* op = tree.kind == FactorTree::Kind::kAnd ? " & " : " | ";
      std::string s = "(";
      for (std::size_t i = 0; i < tree.children.size(); ++i) {
        if (i > 0) s += op;
        s += to_string(tree.children[i]);
      }
      return s + ")";
    }
  }
  return "?";
}

bool evaluate(const FactorTree& tree, std::uint32_t minterm) {
  switch (tree.kind) {
    case FactorTree::Kind::kConst0:
      return false;
    case FactorTree::Kind::kConst1:
      return true;
    case FactorTree::Kind::kLiteral:
      return test_bit(minterm, tree.var) == tree.positive;
    case FactorTree::Kind::kAnd:
      for (const FactorTree& child : tree.children)
        if (!evaluate(child, minterm)) return false;
      return true;
    case FactorTree::Kind::kOr:
      for (const FactorTree& child : tree.children)
        if (evaluate(child, minterm)) return true;
      return false;
  }
  return false;
}

}  // namespace rdc
