// Tests for the pluggable fault-model layer (DESIGN.md §16): spec parsing
// and canonical round trips, the flow_options_fingerprint compatibility
// contract (default model = pre-§16 bytes), each concrete model checked
// differentially against the existing exact kernels or a brute-force
// scalar reference, the stuck-at detectability classifier (inadmissible
// class), pipeline '@model' annotations with byte-offset errors, and the
// report/fingerprint stamping that keeps cache keys from aliasing.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exec/budget.hpp"
#include "flow/batch_supervisor.hpp"
#include "flow/pass.hpp"
#include "flow/pipeline.hpp"
#include "flow/synthesis_flow.hpp"
#include "reliability/error_rate.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/sampling.hpp"
#include "tt/incomplete_spec.hpp"
#include "tt/neighbor_stats.hpp"
#include "tt/ternary_function.hpp"

namespace rdc {
namespace {

using exec::StatusCode;
using reliability::FaultDetectability;
using reliability::FaultModel;
using reliability::FaultModelKind;
using reliability::FaultModelSpec;
using reliability::MintermEvents;

constexpr double kDcDensities[] = {0.0, 0.3, 0.6, 1.0};

TernaryTruthTable random_ternary(unsigned n, double dc_density, Rng& rng) {
  TernaryTruthTable f(n);
  for (std::uint32_t m = 0; m < f.size(); ++m) {
    if (rng.flip(dc_density))
      f.set_phase(m, Phase::kDc);
    else
      f.set_phase(m, rng.flip(0.5) ? Phase::kOne : Phase::kZero);
  }
  return f;
}

TernaryTruthTable random_complete(unsigned n, Rng& rng) {
  TernaryTruthTable f(n);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    f.set_phase(m, rng.flip(0.5) ? Phase::kOne : Phase::kZero);
  return f;
}

// --- FaultModelSpec: grammar, canonical form, fingerprint -----------------

TEST(FaultModelSpec, ParseAndCanonicalRoundTrip) {
  const struct {
    const char* name;
    std::vector<std::string> args;
    FaultModelSpec expected;
    const char* canonical;
  } cases[] = {
      {"bitflip", {}, FaultModelSpec::bitflip(), "bitflip"},
      // bitflip(1) canonicalizes to the bare name — a fixed point, so the
      // fuzzer's reparse/re-render contract holds for every spelling.
      {"bitflip", {"1"}, FaultModelSpec::bitflip(1), "bitflip"},
      {"bitflip", {"2"}, FaultModelSpec::bitflip(2), "bitflip(2)"},
      {"bitflip_weighted",
       {"1", "0.5"},
       FaultModelSpec::bitflip_weighted({1.0, 0.5}),
       "bitflip_weighted(1,0.5)"},
      {"stuckat", {}, FaultModelSpec::stuckat(), "stuckat"},
  };
  for (const auto& c : cases) {
    FaultModelSpec parsed;
    const exec::Status status = FaultModelSpec::parse(c.name, c.args, parsed);
    ASSERT_TRUE(status.ok()) << c.canonical << ": " << status.message();
    EXPECT_EQ(parsed, c.expected) << c.canonical;
    EXPECT_EQ(parsed.canonical(), c.canonical);
  }
  EXPECT_TRUE(FaultModelSpec().is_default());
  EXPECT_TRUE(FaultModelSpec::bitflip(1).is_default());
  EXPECT_FALSE(FaultModelSpec::bitflip(2).is_default());
  EXPECT_FALSE(FaultModelSpec::stuckat().is_default());
  EXPECT_FALSE(FaultModelSpec::bitflip_weighted({1.0}).is_default());
}

TEST(FaultModelSpec, ParseRejectsBadReferences) {
  const struct {
    const char* name;
    std::vector<std::string> args;
    const char* fragment;
  } cases[] = {
      {"nosuchmodel", {}, "unknown fault model 'nosuchmodel'"},
      {"bitflip", {"0"}, "not a flip count"},
      {"bitflip", {"21"}, "not a flip count"},
      {"bitflip", {"x"}, "not a flip count"},
      {"bitflip", {"1", "2"}, "at most 1 argument"},
      {"bitflip_weighted", {}, "needs per-pin weights"},
      {"bitflip_weighted", {"0", "0"}, "weights sum to zero"},
      {"bitflip_weighted", {"nan"}, "not a non-negative weight"},
      {"bitflip_weighted", {"inf"}, "not a non-negative weight"},
      {"bitflip_weighted", {"-1"}, "not a non-negative weight"},
      {"stuckat", {"1"}, "takes no arguments"},
  };
  for (const auto& c : cases) {
    FaultModelSpec out = FaultModelSpec::stuckat();  // must be reset
    const exec::Status status = FaultModelSpec::parse(c.name, c.args, out);
    ASSERT_FALSE(status.ok()) << c.name;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_NE(status.message().find(c.fragment), std::string::npos)
        << c.name << " -> " << status.message();
    EXPECT_EQ(out, FaultModelSpec()) << "out not reset for " << c.name;
  }
}

TEST(FaultModelSpec, RegistryNames) {
  const std::vector<std::string> names = reliability::fault_model_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "bitflip");
  EXPECT_EQ(names[1], "bitflip_weighted");
  EXPECT_EQ(names[2], "stuckat");
  EXPECT_STREQ(reliability::fault_model_kind_name(FaultModelKind::kBitflip),
               "bitflip");
  EXPECT_STREQ(
      reliability::fault_model_kind_name(FaultModelKind::kBitflipWeighted),
      "bitflip_weighted");
  EXPECT_STREQ(reliability::fault_model_kind_name(FaultModelKind::kStuckAt),
               "stuckat");
}

TEST(FaultModelSpec, FingerprintsSeparateModels) {
  const FaultModelSpec specs[] = {
      FaultModelSpec(),
      FaultModelSpec::bitflip(2),
      FaultModelSpec::bitflip(3),
      FaultModelSpec::bitflip_weighted({1.0, 0.5}),
      FaultModelSpec::bitflip_weighted({0.5, 1.0}),
      FaultModelSpec::stuckat(),
  };
  for (std::size_t i = 0; i < std::size(specs); ++i)
    for (std::size_t j = i + 1; j < std::size(specs); ++j)
      EXPECT_NE(specs[i].fingerprint(), specs[j].fingerprint())
          << specs[i].canonical() << " vs " << specs[j].canonical();
  EXPECT_EQ(FaultModelSpec::stuckat().fingerprint(),
            FaultModelSpec::stuckat().fingerprint());
  EXPECT_EQ(FaultModelSpec::bitflip(1).fingerprint(),
            FaultModelSpec().fingerprint());
}

// --- flow_options_fingerprint compatibility -------------------------------

// The pre-§16 fingerprint, replicated field by field. If a knob is ever
// added to FlowOptions without updating this mirror the test fails loudly,
// which is exactly the review prompt we want: old fingerprints key warm
// serve caches and resumable journals, so changing them silently is a bug.
std::uint64_t legacy_fingerprint(const FlowOptions& options,
                                 const exec::BudgetLimits& budget) {
  const auto fnv1a = [](const void* data, std::size_t size,
                        std::uint64_t hash) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 0x100000001b3ull;
    }
    return hash;
  };
  const auto mix_u64 = [&](std::uint64_t hash, std::uint64_t value) {
    return fnv1a(&value, sizeof value, hash);
  };
  const auto mix_double = [&](std::uint64_t hash, double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    return mix_u64(hash, bits);
  };
  std::uint64_t hash = 0xcbf29ce484222325ull;
  hash = mix_u64(hash, static_cast<std::uint64_t>(options.objective));
  hash = mix_double(hash, options.ranking_fraction);
  hash = mix_double(hash, options.lcf_threshold);
  hash = mix_u64(hash, options.lcf_assign_balanced ? 1 : 0);
  hash = mix_u64(hash, options.resyn_recipe ? 1 : 0);
  hash = mix_u64(hash, options.use_extraction ? 1 : 0);
  hash = mix_u64(hash, options.sample_seed);
  hash = mix_double(hash, budget.deadline_ms);
  hash = mix_u64(hash, budget.max_checkpoints);
  hash = mix_u64(hash, budget.max_rss_bytes);
  return hash;
}

TEST(FlowFingerprint, DefaultModelPreservesPreRefactorBytes) {
  FlowOptions options;
  exec::BudgetLimits budget;
  EXPECT_EQ(flow::flow_options_fingerprint(options, budget),
            legacy_fingerprint(options, budget));

  options.objective = OptimizeFor::kDelay;
  options.ranking_fraction = 0.75;
  options.lcf_threshold = 0.6;
  options.lcf_assign_balanced = true;
  options.resyn_recipe = true;
  options.use_extraction = true;
  options.sample_seed = 42;
  budget.deadline_ms = 1500.0;
  budget.max_checkpoints = 1000;
  budget.max_rss_bytes = 1 << 20;
  EXPECT_EQ(flow::flow_options_fingerprint(options, budget),
            legacy_fingerprint(options, budget));

  // An explicit bitflip(1) is still the default model — same bytes.
  options.fault_model = FaultModelSpec::bitflip(1);
  EXPECT_EQ(flow::flow_options_fingerprint(options, budget),
            legacy_fingerprint(options, budget));
}

TEST(FlowFingerprint, NonDefaultModelsNeverAlias) {
  FlowOptions options;
  exec::BudgetLimits budget;
  const std::uint64_t base = flow::flow_options_fingerprint(options, budget);

  std::vector<std::uint64_t> prints{base};
  for (const FaultModelSpec& model :
       {FaultModelSpec::bitflip(2), FaultModelSpec::stuckat(),
        FaultModelSpec::bitflip_weighted({1.0, 0.5, 0.25, 0.125})}) {
    options.fault_model = model;
    prints.push_back(flow::flow_options_fingerprint(options, budget));
  }
  for (std::size_t i = 0; i < prints.size(); ++i)
    for (std::size_t j = i + 1; j < prints.size(); ++j)
      EXPECT_NE(prints[i], prints[j]) << i << " vs " << j;
}

// --- bitflip model vs the existing exact kernels --------------------------

TEST(BitflipModel, MatchesExactKernels) {
  const auto model = reliability::make_fault_model(FaultModelSpec::bitflip(1));
  const auto model2 = reliability::make_fault_model(FaultModelSpec::bitflip(2));
  Rng rng(9001);
  for (unsigned n = 1; n <= 10; ++n) {
    for (const double density : kDcDensities) {
      const TernaryTruthTable spec = random_ternary(n, density, rng);
      const TernaryTruthTable impl = random_complete(n, rng);
      EXPECT_EQ(model->error_rate(impl, spec), exact_error_rate(impl, spec))
          << "n=" << n << " dc=" << density;
      EXPECT_EQ(model->error_rate_scalar(impl, spec),
                exact_error_rate_scalar(impl, spec))
          << "n=" << n << " dc=" << density;
      if (n >= 2) {
        EXPECT_EQ(model2->error_rate(impl, spec),
                  exact_error_rate_kbit(impl, spec, 2))
            << "n=" << n << " dc=" << density;
        EXPECT_EQ(model2->error_rate_scalar(impl, spec),
                  exact_error_rate_kbit_scalar(impl, spec, 2))
            << "n=" << n << " dc=" << density;
      }
    }
  }
}

TEST(BitflipModel, EventsMatchNeighborCounts) {
  const auto model = reliability::make_fault_model(FaultModelSpec::bitflip(1));
  Rng rng(9002);
  for (unsigned n = 1; n <= 8; ++n) {
    const TernaryTruthTable spec = random_ternary(n, 0.5, rng);
    const NeighborTable neighbors(spec);
    const std::vector<MintermEvents> events =
        model->dc_assignment_events(spec, neighbors);
    const std::vector<std::uint32_t> dcs = spec.dc_minterms();
    ASSERT_EQ(events.size(), dcs.size()) << "n=" << n;
    for (std::size_t i = 0; i < dcs.size(); ++i) {
      const NeighborCounts c = neighbors.at(dcs[i]);
      // Joining the on-set creates an event per off-neighbor and vice
      // versa — exactly the paper's majority-vote quantities.
      EXPECT_EQ(events[i].if_on, static_cast<double>(c.off)) << "n=" << n;
      EXPECT_EQ(events[i].if_off, static_cast<double>(c.on)) << "n=" << n;
    }
  }
}

// --- weighted model: differential + degenerate weights --------------------

TEST(WeightedModel, MatchesExactWeightedKernels) {
  Rng rng(9003);
  for (unsigned n = 1; n <= 10; ++n) {
    std::vector<double> weights(n);
    for (double& w : weights) w = rng.uniform() * 2.0;
    weights[0] += 0.01;  // keep the sum positive even if all draws are tiny
    const auto model = reliability::make_fault_model(
        FaultModelSpec::bitflip_weighted(weights));
    for (const double density : kDcDensities) {
      const TernaryTruthTable spec = random_ternary(n, density, rng);
      const TernaryTruthTable impl = random_complete(n, rng);
      EXPECT_EQ(model->error_rate(impl, spec),
                exact_error_rate_weighted(impl, spec, weights))
          << "n=" << n << " dc=" << density;
      EXPECT_EQ(model->error_rate_scalar(impl, spec),
                exact_error_rate_weighted_scalar(impl, spec, weights))
          << "n=" << n << " dc=" << density;
    }
  }
}

TEST(WeightedModel, SinglePinWeightIsolatesThatPin) {
  // All the event mass on pin j: the weighted rate must equal the
  // unweighted rate restricted to pin-j flips, for every pin.
  Rng rng(9004);
  const unsigned n = 6;
  const TernaryTruthTable spec = random_ternary(n, 0.4, rng);
  const TernaryTruthTable impl = random_complete(n, rng);
  for (unsigned j = 0; j < n; ++j) {
    std::vector<double> weights(n, 0.0);
    weights[j] = 1.0;
    // Brute-force reference: propagating pin-j events over care sources,
    // normalized by the 2^n sources of the single unit-weight pin.
    double propagating = 0.0;
    for (std::uint32_t m = 0; m < spec.size(); ++m) {
      if (!spec.is_care(m)) continue;
      if (impl.is_on(m) != impl.is_on(flip_bit(m, j))) propagating += 1.0;
    }
    const double expected = propagating / spec.size();
    EXPECT_DOUBLE_EQ(exact_error_rate_weighted(impl, spec, weights), expected)
        << "pin " << j;
  }
}

TEST(WeightedModel, DegenerateWeightsAreRejected) {
  Rng rng(9005);
  const TernaryTruthTable spec = random_ternary(4, 0.4, rng);
  const TernaryTruthTable impl = random_complete(4, rng);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  const std::vector<double> all_zero(4, 0.0);
  const std::vector<double> has_nan{1.0, nan, 1.0, 1.0};
  const std::vector<double> has_inf{1.0, 1.0, inf, 1.0};
  const std::vector<double> negative{1.0, -0.5, 1.0, 1.0};
  for (const auto& weights : {all_zero, has_nan, has_inf, negative}) {
    EXPECT_THROW(exact_error_rate_weighted(impl, spec, weights),
                 std::invalid_argument);
    EXPECT_THROW(exact_error_rate_weighted_scalar(impl, spec, weights),
                 std::invalid_argument);
    const auto model = reliability::make_fault_model(
        FaultModelSpec::bitflip_weighted(weights));
    EXPECT_THROW(model->error_rate(impl, spec), std::invalid_argument);
  }

  // A single positive pin among zeros is fine — degenerate but valid.
  const std::vector<double> single{0.0, 0.0, 1.0, 0.0};
  const auto model =
      reliability::make_fault_model(FaultModelSpec::bitflip_weighted(single));
  EXPECT_EQ(model->error_rate(impl, spec),
            exact_error_rate_weighted(impl, spec, single));
}

// --- stuck-at model: brute force, hand cases, word/scalar identity --------

TEST(StuckAtModel, WordParallelMatchesScalarReference) {
  const auto model = reliability::make_fault_model(FaultModelSpec::stuckat());
  Rng rng(9006);
  for (unsigned n = 1; n <= 12; ++n) {
    for (const double density : kDcDensities) {
      const TernaryTruthTable spec = random_ternary(n, density, rng);
      const TernaryTruthTable impl = random_complete(n, rng);
      EXPECT_EQ(model->error_rate(impl, spec),
                model->error_rate_scalar(impl, spec))
          << "n=" << n << " dc=" << density;
    }
  }
}

TEST(StuckAtModel, HandComputedRates) {
  const auto model = reliability::make_fault_model(FaultModelSpec::stuckat());

  // Identity on one input: both stuck-at faults always propagate.
  TernaryTruthTable identity(1);
  identity.set_phase(1, Phase::kOne);
  EXPECT_DOUBLE_EQ(model->error_rate(identity, identity), 1.0);

  // Constant functions mask every stuck-at fault.
  const TernaryTruthTable zero(2);
  EXPECT_DOUBLE_EQ(model->error_rate(zero, zero), 0.0);

  // AND on two inputs: each of the four faults is exposed by one of the
  // two care sources in its halfspace, so each contributes 1/2 and the
  // rate is 4 * (1/2) / (2 * 2) = 0.5.
  TernaryTruthTable and2(2);
  and2.set_phase(3, Phase::kOne);
  EXPECT_DOUBLE_EQ(model->error_rate(and2, and2), 0.5);

  // Pin-asymmetric care set: spec cares on {00, 01, 10}, minterm 11 is DC
  // and the implementation drives it to 0; impl = {0, 1, 0, 0}. Halfspace
  // normalization makes stuck-at genuinely different from bit flips here:
  // bitflip rate = 3 propagating events / (2 * 4) = 0.375, stuck-at rate
  // = (1/1 + 1/2 + 0 + 1/2) / (2 * 2) = 0.5.
  TernaryTruthTable spec(2);
  spec.set_phase(1, Phase::kOne);
  spec.set_phase(3, Phase::kDc);
  TernaryTruthTable impl(2);
  impl.set_phase(1, Phase::kOne);
  EXPECT_DOUBLE_EQ(exact_error_rate(impl, spec), 0.375);
  EXPECT_DOUBLE_EQ(model->error_rate(impl, spec), 0.5);
}

TEST(StuckAtModel, EventsBruteForceAtSmallN) {
  // dc_assignment_events against a direct enumeration: assigning the DC to
  // a phase adds, for each fault (j, v), the 1/C_j(bit_j) exposure mass of
  // every new propagating (source, fault) pair the assignment creates
  // among care sources reading across to the opposite phase.
  const auto model = reliability::make_fault_model(FaultModelSpec::stuckat());
  Rng rng(9007);
  for (unsigned n = 2; n <= 6; ++n) {
    const TernaryTruthTable spec = random_ternary(n, 0.5, rng);
    const NeighborTable neighbors(spec);
    const std::vector<std::uint32_t> dcs = spec.dc_minterms();
    const std::vector<MintermEvents> events =
        model->dc_assignment_events(spec, neighbors);
    ASSERT_EQ(events.size(), dcs.size());
    for (std::size_t i = 0; i < dcs.size(); ++i) {
      const std::uint32_t m = dcs[i];
      double if_on = 0.0;
      double if_off = 0.0;
      for (unsigned j = 0; j < n; ++j) {
        const std::uint32_t source = flip_bit(m, j);
        if (!spec.is_care(source)) continue;
        // The fault stuck-at-bit_j(m) reads `source` as m; its exposure is
        // normalized by the care population of the source's halfspace.
        double care_sources = 0.0;
        for (std::uint32_t x = 0; x < spec.size(); ++x)
          if (spec.is_care(x) && ((x >> j) & 1u) == ((source >> j) & 1u))
            care_sources += 1.0;
        if (spec.is_on(source)) if_off += 1.0 / care_sources;
        if (spec.is_off(source)) if_on += 1.0 / care_sources;
      }
      EXPECT_DOUBLE_EQ(events[i].if_on, if_on) << "n=" << n << " m=" << m;
      EXPECT_DOUBLE_EQ(events[i].if_off, if_off) << "n=" << n << " m=" << m;
    }
  }
}

TEST(StuckAtModel, SampledCiCoversTheExactRate) {
  const auto model = reliability::make_fault_model(FaultModelSpec::stuckat());
  Rng make(9008);
  for (const unsigned n : {8u, 10u}) {
    const TernaryTruthTable spec = random_ternary(n, 0.4, make);
    const TernaryTruthTable impl = random_complete(n, make);
    const double exact = model->error_rate(impl, spec);
    int covered = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      Rng rng(seed);
      const SampledRate r = model->sampled_rate(impl, spec, 4000, rng);
      EXPECT_LE(0.0, r.ci_low);
      EXPECT_LE(r.ci_low, r.ci_high);
      EXPECT_LE(r.ci_high, 1.0);
      if (exact >= r.ci_low && exact <= r.ci_high) ++covered;
    }
    EXPECT_GE(covered, 85) << "n=" << n;
  }
}

TEST(WeightedModel, SampledCiCoversTheExactRate) {
  Rng make(9009);
  const unsigned n = 9;
  std::vector<double> weights(n);
  for (double& w : weights) w = 0.1 + make.uniform();
  const auto model =
      reliability::make_fault_model(FaultModelSpec::bitflip_weighted(weights));
  const TernaryTruthTable spec = random_ternary(n, 0.4, make);
  const TernaryTruthTable impl = random_complete(n, make);
  const double exact = model->error_rate(impl, spec);
  int covered = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const SampledRate r = model->sampled_rate(impl, spec, 4000, rng);
    if (exact >= r.ci_low && exact <= r.ci_high) ++covered;
  }
  EXPECT_GE(covered, 85);
}

// --- multi-output means ---------------------------------------------------

TEST(FaultModel, MultiOutputRateIsThePerOutputMean) {
  Rng rng(9010);
  IncompleteSpec spec("s", 6, 3);
  IncompleteSpec impl("i", 6, 3);
  for (unsigned o = 0; o < 3; ++o) {
    spec.output(o) = random_ternary(6, 0.4, rng);
    impl.output(o) = random_complete(6, rng);
  }
  for (const FaultModelSpec& ms :
       {FaultModelSpec::bitflip(1), FaultModelSpec::stuckat()}) {
    const auto model = reliability::make_fault_model(ms);
    double sum = 0.0;
    for (unsigned o = 0; o < 3; ++o)
      sum += model->error_rate(impl.output(o), spec.output(o));
    EXPECT_DOUBLE_EQ(model->error_rate(impl, spec), sum / 3.0)
        << ms.canonical();
  }
  IncompleteSpec wrong("w", 6, 2);
  for (unsigned o = 0; o < 2; ++o) wrong.output(o) = random_complete(6, rng);
  const auto model = reliability::make_fault_model(FaultModelSpec::stuckat());
  EXPECT_THROW(model->error_rate(wrong, spec), std::invalid_argument);
}

// --- stuck-at detectability (the inadmissible class) ----------------------

TEST(Detectability, ConstantFunctionsAreInadmissible) {
  const TernaryTruthTable zero(2);
  const reliability::DetectabilityReport report =
      reliability::classify_stuckat_faults(zero);
  ASSERT_EQ(report.faults.size(), 4u);
  EXPECT_EQ(report.untestable, 4u);
  EXPECT_EQ(report.detectable, 0u);
  EXPECT_EQ(report.assignment_dependent, 0u);
  EXPECT_TRUE(report.inadmissible());
  // Fault ordering contract: pin ascending, stuck-at-0 before stuck-at-1.
  EXPECT_EQ(report.faults[0].pin, 0u);
  EXPECT_FALSE(report.faults[0].stuck_at_one);
  EXPECT_EQ(report.faults[1].pin, 0u);
  EXPECT_TRUE(report.faults[1].stuck_at_one);
  EXPECT_EQ(report.faults[3].pin, 1u);
}

TEST(Detectability, ParityIsFullyDetectable) {
  TernaryTruthTable parity(3);
  for (std::uint32_t m = 0; m < parity.size(); ++m)
    if (std::popcount(m) % 2 == 1) parity.set_phase(m, Phase::kOne);
  const reliability::DetectabilityReport report =
      reliability::classify_stuckat_faults(parity);
  EXPECT_EQ(report.detectable, 6u);
  EXPECT_EQ(report.untestable, 0u);
  EXPECT_EQ(report.assignment_dependent, 0u);
  EXPECT_FALSE(report.inadmissible());
}

TEST(Detectability, DcNeighborsMakeFaultsAssignmentDependent) {
  // f(0) = 0, f(1) = DC on one input. Stuck-at-0 has no care source in
  // the x0=1 halfspace (untestable); stuck-at-1's only witness reads the
  // DC minterm, so the assignment decides testability.
  TernaryTruthTable f(1);
  f.set_phase(1, Phase::kDc);
  const reliability::DetectabilityReport report =
      reliability::classify_stuckat_faults(f);
  ASSERT_EQ(report.faults.size(), 2u);
  EXPECT_EQ(report.faults[0].detectability, FaultDetectability::kUntestable);
  EXPECT_EQ(report.faults[1].detectability,
            FaultDetectability::kAssignmentDependent);
  EXPECT_EQ(report.untestable, 1u);
  EXPECT_EQ(report.assignment_dependent, 1u);
  EXPECT_TRUE(report.inadmissible());
}

TEST(Detectability, MultiOutputUntestableTotal) {
  IncompleteSpec spec("s", 2, 2);
  spec.output(0) = TernaryTruthTable(2);  // constant 0: 4 untestable
  TernaryTruthTable xor2(2);
  xor2.set_phase(1, Phase::kOne);
  xor2.set_phase(2, Phase::kOne);
  spec.output(1) = xor2;  // fully detectable
  EXPECT_EQ(reliability::untestable_stuckat_faults(spec), 4u);
}

// --- pipeline '@model' annotations ----------------------------------------

TEST(PipelineAnnotation, ErrorsCarryByteOffsets) {
  const struct {
    const char* spec;
    const char* fragment;
  } cases[] = {
      {"assign:ranking(0.5)@", "expected a fault model name after '@' at offset 20"},
      {"assign:ranking(0.5)@nosuchmodel",
       "unknown fault model 'nosuchmodel' at offset 20"},
      {"assign:ranking(0.5)@bitflip(0)", "not a flip count in [1, 20] at offset 20"},
      {"assign:ranking(0.5)@stuckat(1)",
       "fault model 'stuckat' takes no arguments at offset 20"},
      {"assign:ranking(0.5)@stuckat(", "unclosed '(' at offset 27"},
      {"assign:ranking(0.5)@stuckat()",
       "empty argument for fault model 'stuckat' at offset 28"},
      {"espresso@stuckat",
       "pass 'espresso' does not accept a fault model annotation at offset 8"},
      {"assign:conventional@stuckat",
       "does not accept a fault model annotation at offset 19"},
  };
  for (const auto& c : cases) {
    exec::Result<flow::Pipeline> result = flow::parse_pipeline(c.spec);
    ASSERT_FALSE(result.ok()) << c.spec;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << c.spec;
    EXPECT_NE(result.status().message().find(c.fragment), std::string::npos)
        << c.spec << " -> " << result.status().message();
  }
}

TEST(PipelineAnnotation, RoundTripsThroughToString) {
  const struct {
    const char* spec;
    const char* rendered;  ///< canonical re-rendering
  } cases[] = {
      {"assign:ranking(0.5)@stuckat | espresso",
       "assign:ranking(0.5)@stuckat | espresso"},
      {"assign:ranking(0.5) @ stuckat | espresso",
       "assign:ranking(0.5)@stuckat | espresso"},
      // bitflip(1) renders as the bare canonical name; the annotation is
      // kept (it selects the label) even though behavior is the default.
      {"assign:lcf(0.55)@bitflip(1)", "assign:lcf(0.55)@bitflip"},
      {"error_rate@bitflip(2)", "error_rate@bitflip(2)"},
      {"assign:all@bitflip_weighted(1, 0.5)",
       "assign:all@bitflip_weighted(1,0.5)"},
      {"error_rate:sampled(4096)@stuckat", "error_rate:sampled(4096)@stuckat"},
  };
  for (const auto& c : cases) {
    exec::Result<flow::Pipeline> first = flow::parse_pipeline(c.spec);
    ASSERT_TRUE(first.ok()) << c.spec << " -> " << first.status().message();
    EXPECT_EQ(first->to_string(), c.rendered) << c.spec;
    // Canonical forms are fixed points: reparse and re-render identically.
    exec::Result<flow::Pipeline> second = flow::parse_pipeline(c.rendered);
    ASSERT_TRUE(second.ok()) << c.rendered;
    EXPECT_EQ(second->to_string(), c.rendered);
  }
}

TEST(PipelineAnnotation, CanonicalFlowSpecCarriesNonDefaultModels) {
  FlowOptions options;
  const std::string plain =
      flow::canonical_flow_spec(DcPolicy::kRankingFraction, options);
  EXPECT_EQ(plain.find('@'), std::string::npos);

  options.fault_model = FaultModelSpec::stuckat();
  const std::string annotated =
      flow::canonical_flow_spec(DcPolicy::kRankingFraction, options);
  EXPECT_NE(annotated.find("assign:ranking(0.5)@stuckat"), std::string::npos)
      << annotated;
  EXPECT_NE(annotated.find("error_rate@stuckat"), std::string::npos)
      << annotated;
  // The canonical spec must reparse (that's how run_flow executes it).
  EXPECT_TRUE(flow::parse_pipeline(annotated).ok()) << annotated;

  // Conventional assignment never consults the model: only the trailing
  // error_rate pass carries the annotation there.
  const std::string conventional =
      flow::canonical_flow_spec(DcPolicy::kConventional, options);
  EXPECT_EQ(conventional.find("assign:conventional@"), std::string::npos)
      << conventional;
  EXPECT_NE(conventional.find("error_rate@stuckat"), std::string::npos)
      << conventional;
  EXPECT_TRUE(flow::parse_pipeline(conventional).ok()) << conventional;
}

// --- end-to-end flow integration ------------------------------------------

IncompleteSpec flow_test_spec() {
  Rng rng(9011);
  IncompleteSpec spec("fmtest", 5, 2);
  for (unsigned o = 0; o < 2; ++o)
    spec.output(o) = random_ternary(5, 0.4, rng);
  return spec;
}

TEST(FlowFaultModel, ReportStampsNonDefaultModels) {
  const IncompleteSpec spec = flow_test_spec();

  FlowOptions options;
  const FlowResult plain = run_flow(spec, DcPolicy::kRankingFraction, options);
  ASSERT_TRUE(plain.status.ok()) << plain.status.to_string();
  EXPECT_EQ(plain.report.to_json().find("\"fault_model\""),
            std::string::npos);

  options.fault_model = FaultModelSpec::stuckat();
  const FlowResult stuck = run_flow(spec, DcPolicy::kRankingFraction, options);
  ASSERT_TRUE(stuck.status.ok()) << stuck.status.to_string();
  EXPECT_NE(stuck.report.to_json().find("\"fault_model\": \"stuckat\""),
            std::string::npos)
      << stuck.report.to_json();
}

TEST(FlowFaultModel, WeightCountMismatchIsRejectedUpFront) {
  const IncompleteSpec spec = flow_test_spec();  // 5 inputs
  FlowOptions options;
  options.fault_model = FaultModelSpec::bitflip_weighted({1.0, 0.5});
  const FlowResult result =
      run_flow(spec, DcPolicy::kRankingFraction, options);
  EXPECT_EQ(result.degradation, DegradationLevel::kPartial);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status.message().find("needs 5 weights, got 2"),
            std::string::npos)
      << result.status.message();
}

TEST(FlowFaultModel, UniformWeightsReproduceDefaultDecisions) {
  // bitflip_weighted with uniform weights produces the same event counts
  // as the paper's model, so the generic (double-arithmetic) ranking path
  // must make the very same assignment decisions as the legacy integer
  // path — and the weighted exact rate reduces to the unweighted one.
  const IncompleteSpec spec = flow_test_spec();
  FlowOptions uniform;
  uniform.fault_model =
      FaultModelSpec::bitflip_weighted(std::vector<double>(5, 1.0));
  const FlowResult weighted =
      run_flow(spec, DcPolicy::kRankingFraction, uniform);
  const FlowResult plain = run_flow(spec, DcPolicy::kRankingFraction, {});
  ASSERT_TRUE(weighted.status.ok()) << weighted.status.to_string();
  ASSERT_TRUE(plain.status.ok()) << plain.status.to_string();
  for (unsigned o = 0; o < 2; ++o)
    EXPECT_EQ(weighted.implementation.output(o), plain.implementation.output(o))
        << "output " << o;
  EXPECT_DOUBLE_EQ(weighted.error_rate, plain.error_rate);
}

TEST(FlowFaultModel, AnnotatedDefaultModelOnlySetsTheLabel) {
  // An explicit @bitflip routes through the unchanged legacy kernels but
  // still names the model in the report (and hence the canonical spec /
  // serve-cache key).
  const IncompleteSpec spec = flow_test_spec();
  exec::Result<flow::Pipeline> annotated = flow::parse_pipeline(
      "assign:ranking(0.5)@bitflip | espresso | factor | aig | map:power | "
      "error_rate");
  ASSERT_TRUE(annotated.ok()) << annotated.status().message();
  flow::Design design(spec);
  ASSERT_TRUE(annotated->run(design).ok());
  EXPECT_EQ(design.fault_model_label, "bitflip");

  exec::Result<flow::Pipeline> plain = flow::parse_pipeline(
      "assign:ranking(0.5) | espresso | factor | aig | map:power | "
      "error_rate");
  ASSERT_TRUE(plain.ok());
  flow::Design base(spec);
  ASSERT_TRUE(plain->run(base).ok());
  EXPECT_TRUE(base.fault_model_label.empty());
  // Identical synthesis either way — the annotation is metadata only.
  for (unsigned o = 0; o < 2; ++o)
    EXPECT_EQ(design.working().output(o), base.working().output(o));
}

TEST(FlowFaultModel, DesignCachesModelInstances) {
  const IncompleteSpec spec = flow_test_spec();
  flow::Design design(spec);
  const FaultModel& a = design.fault_model(FaultModelSpec::stuckat());
  const FaultModel& b = design.fault_model(FaultModelSpec::stuckat());
  EXPECT_EQ(&a, &b);
  const FaultModel& c = design.fault_model(FaultModelSpec::bitflip(2));
  EXPECT_NE(&a, &c);
  EXPECT_EQ(c.model_spec().k(), 2u);
}

}  // namespace
}  // namespace rdc
