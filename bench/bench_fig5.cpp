// Reproduces Figure 5 of the paper: normalized min, max and mean area,
// power and delay across all benchmarks (y-axis) as a function of the
// fraction of DCs assigned for reliability (x-axis), under delay
// optimization and under power optimization.
//
// Normalization is per-benchmark against its fraction-0 (fully
// conventional) implementation under the same optimizer mode.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"

namespace {

struct Metrics {
  double area;
  double delay;
  double power;
};

Metrics metrics_of(const rdc::NetlistStats& stats) {
  return {stats.area, stats.delay_ps, stats.power_uw};
}

}  // namespace

int main() {
  using namespace rdc;
  const std::vector<double> fractions{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  for (const OptimizeFor objective :
       {OptimizeFor::kDelay, OptimizeFor::kPower}) {
    const bool is_delay = objective == OptimizeFor::kDelay;
    bench::heading(std::string("Figure 5 (") +
                   (is_delay ? "delay" : "power") +
                   "-optimized): normalized overhead vs fraction assigned");

    // normalized[metric][fraction] = per-benchmark normalized values.
    std::vector<std::vector<double>> norm_area(fractions.size());
    std::vector<std::vector<double>> norm_delay(fractions.size());
    std::vector<std::vector<double>> norm_power(fractions.size());

    for (const IncompleteSpec& spec : bench::suite()) {
      FlowOptions base_options;
      base_options.objective = objective;
      const Metrics baseline = metrics_of(
          run_flow(spec, DcPolicy::kConventional, base_options).stats);
      for (std::size_t i = 0; i < fractions.size(); ++i) {
        FlowOptions options;
        options.objective = objective;
        options.ranking_fraction = fractions[i];
        const Metrics m = metrics_of(
            run_flow(spec, DcPolicy::kRankingFraction, options).stats);
        norm_area[i].push_back(bench::normalized(baseline.area, m.area));
        norm_delay[i].push_back(bench::normalized(baseline.delay, m.delay));
        norm_power[i].push_back(bench::normalized(baseline.power, m.power));
      }
    }

    const auto print_metric = [&](const char* name,
                                  const std::vector<std::vector<double>>& v) {
      std::printf("\n%s (min / mean / max across benchmarks)\n", name);
      std::printf("%8s %8s %8s %8s\n", "fraction", "min", "mean", "max");
      for (std::size_t i = 0; i < fractions.size(); ++i) {
        const Summary s = summarize(v[i]);
        std::printf("%8.1f %8.3f %8.3f %8.3f\n", fractions[i], s.min, s.mean,
                    s.max);
      }
    };
    print_metric("Normalized area", norm_area);
    print_metric("Normalized delay", norm_delay);
    print_metric("Normalized power", norm_power);
  }
  bench::note(
      "\nExpected shape (paper): means rise with the fraction assigned\n"
      "(reliability costs overhead), while the min lines dip below 1.0 on\n"
      "some benchmarks — selective ranking-based assignment can improve\n"
      "area/delay and reliability simultaneously.");
  return 0;
}
