file(REMOVE_RECURSE
  "CMakeFiles/internal_dcs.dir/internal_dcs.cpp.o"
  "CMakeFiles/internal_dcs.dir/internal_dcs.cpp.o.d"
  "internal_dcs"
  "internal_dcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internal_dcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
