// rdcsynd — the synthesis serving daemon (DESIGN.md §15).
//
// Listens on a unix domain socket for framed (spec bytes, pipeline spec)
// jobs, runs them on a bounded executor pool under per-request
// ExecBudgets, and replies with rdc.flow.report.v1 JSON. Repeated
// requests hit the content-addressed result cache; overload past the
// admission queue (or the RSS cap) is shed with RESOURCE_EXHAUSTED;
// malformed frames and slow clients get Status replies and a connection
// close, never a crash. SIGINT/SIGTERM drains gracefully: stop
// accepting, finish or cancel in-flight work, flush the final metrics
// snapshot, emit a serve.drain event, exit 0.
//
//   rdcsynd --socket /tmp/rdcsynd.sock [options]
//
// Telemetry: RDC_METRICS=<path>[:interval_ms] exposes the serve.*
// counters and gauges (queue depth, inflight, connections, cache bytes);
// RDC_EVENTS logs the serve.drain record.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exec/shutdown.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

using namespace rdc;

int usage() {
  std::printf(
      "usage: rdcsynd --socket <path> [options]\n"
      "\n"
      "Serves synthesis jobs over a unix domain socket. Submit with\n"
      "rdcsyn_client.\n"
      "\n"
      "options:\n"
      "  --socket <path>       unix socket to listen on (required)\n"
      "  --threads <n>         executor threads; default 2\n"
      "  --queue <n>           admission queue depth; requests past it are\n"
      "                        shed with RESOURCE_EXHAUSTED; default 64\n"
      "  --max-rss-mb <mb>     shed new work while process RSS exceeds\n"
      "                        this; default off\n"
      "  --deadline-ms <ms>    per-request budget when the request has\n"
      "                        none; default off\n"
      "  --io-timeout-ms <ms>  per-connection read/write deadline\n"
      "                        (slow-loris defense); default 5000\n"
      "  --drain-ms <ms>       how long a drain lets in-flight work finish\n"
      "                        before cancelling it; default 5000\n"
      "  --cache-mb <mb>       result cache byte cap; default 64\n"
      "  --max-frame-mb <mb>   frame body size cap; default 16\n"
      "\n"
      "exit codes:\n"
      "  0  clean drain after SIGINT/SIGTERM\n"
      "  1  startup or hard error (bad socket path, bind failure)\n"
      "  2  usage / invalid arguments\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  double max_rss_mb = 0.0, cache_mb = 64.0, max_frame_mb = 16.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--socket" && (v = next()) != nullptr) {
      options.socket_path = v;
    } else if (a == "--threads" && (v = next()) != nullptr) {
      options.executor_threads = std::atoi(v);
    } else if (a == "--queue" && (v = next()) != nullptr) {
      options.max_queue_depth = static_cast<std::size_t>(std::atol(v));
    } else if (a == "--max-rss-mb" && (v = next()) != nullptr) {
      max_rss_mb = std::atof(v);
    } else if (a == "--deadline-ms" && (v = next()) != nullptr) {
      options.default_deadline_ms = std::atof(v);
    } else if (a == "--io-timeout-ms" && (v = next()) != nullptr) {
      options.io_timeout_ms = std::atof(v);
    } else if (a == "--drain-ms" && (v = next()) != nullptr) {
      options.drain_deadline_ms = std::atof(v);
    } else if (a == "--cache-mb" && (v = next()) != nullptr) {
      cache_mb = std::atof(v);
    } else if (a == "--max-frame-mb" && (v = next()) != nullptr) {
      max_frame_mb = std::atof(v);
    } else {
      std::fprintf(stderr, "rdcsynd: unknown argument %s\n", a.c_str());
      return usage();
    }
  }
  if (options.socket_path.empty() || options.executor_threads < 1 ||
      options.io_timeout_ms < 0 || options.drain_deadline_ms < 0 ||
      options.default_deadline_ms < 0 || max_rss_mb < 0 || cache_mb < 0 ||
      max_frame_mb <= 0)
    return usage();
  options.max_rss_bytes =
      static_cast<std::uint64_t>(max_rss_mb * 1024.0 * 1024.0);
  options.cache_max_bytes =
      static_cast<std::uint64_t>(cache_mb * 1024.0 * 1024.0);
  options.max_frame_bytes =
      static_cast<std::size_t>(max_frame_mb * 1024.0 * 1024.0);

  // The daemon owns the shutdown: the drain sequence (not the metrics
  // snapshotter's re-raise path) decides the exit code.
  exec::install_shutdown_handlers();
  exec::claim_shutdown_ownership();
  obs::metrics_init_from_env();

  serve::Server server(std::move(options));
  if (exec::Status status = server.start(); !status.ok()) {
    std::fprintf(stderr, "rdcsynd: %s\n", status.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "rdcsynd: listening on %s (%d executors)\n",
               server.options().socket_path.c_str(),
               server.options().executor_threads);
  server.run_until_shutdown();
  const serve::ServeStats stats = server.stats();
  std::fprintf(stderr,
               "rdcsynd: drained (signal %d): %llu accepted, %llu shed, "
               "%llu completed, %llu cancelled\n",
               exec::shutdown_signal(),
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.cancelled));
  obs::stop_metrics_snapshotter();
  return 0;
}
