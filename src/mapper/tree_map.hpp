// DAGON-style tree-covering technology mapper.
//
// The AIG is partitioned into trees at multi-fanout nodes; each tree is
// covered by dynamic programming over the structural matches of
// subject_graph.hpp. Two objectives mirror the paper's Design-Compiler
// modes: minimum area ("compile -area/-power") and minimum delay
// ("set_max_delay 0").
#pragma once

#include "aig/aig.hpp"
#include "mapper/cell_library.hpp"
#include "mapper/netlist.hpp"

namespace rdc {

enum class MapObjective { kArea, kDelay };

struct MapOptions {
  MapObjective objective = MapObjective::kArea;
};

/// Maps the AIG onto the library. The result computes exactly the AIG's
/// output functions (verified by tests via exhaustive simulation).
Netlist map_aig(const Aig& aig, const CellLibrary& lib,
                const MapOptions& options = {});

}  // namespace rdc
