#include "espresso/complement.hpp"

#include "espresso/unate.hpp"

namespace rdc {

Cover complement_cube(const Cube& c, unsigned num_inputs) {
  // !(l_1 & l_2 & ... ) = !l_1 + l_1 !l_2 + l_1 l_2 !l_3 + ...
  // The disjoint form keeps the result irredundant by construction.
  Cover result(num_inputs);
  Cube prefix = Cube::full(num_inputs);
  for (unsigned j = 0; j < num_inputs; ++j) {
    const bool allow0 = test_bit(c.mask0, j);
    const bool allow1 = test_bit(c.mask1, j);
    if (allow0 && allow1) continue;  // variable absent from the cube
    const bool literal_value = allow1;
    result.add(prefix.restricted(j, !literal_value));
    prefix = prefix.restricted(j, literal_value);
  }
  return result;
}

Cover complement(const Cover& cover) {
  const unsigned n = cover.num_inputs();
  if (cover.empty_cover()) {
    Cover full(n);
    full.add(Cube::full(n));
    return full;
  }
  const Cube full_cube = Cube::full(n);
  for (const Cube& c : cover.cubes())
    if (c == full_cube) return Cover(n);

  if (cover.size() == 1) return complement_cube(cover.cube(0), n);

  // Recurse on the most binate variable; if unate, any active variable
  // still splits the problem and guarantees progress.
  unsigned split = 0;
  if (const auto binate = most_binate_variable(cover); binate) {
    split = *binate;
  } else {
    unsigned best_activity = 0;
    for (unsigned j = 0; j < n; ++j) {
      const VariableActivity a = variable_activity(cover, j);
      const unsigned activity = a.negative + a.positive;
      if (activity > best_activity) {
        best_activity = activity;
        split = j;
      }
    }
  }

  const Cube lo = full_cube.restricted(split, false);
  const Cube hi = full_cube.restricted(split, true);
  const Cover comp_lo = complement(cover.cofactor(lo));
  const Cover comp_hi = complement(cover.cofactor(hi));

  Cover result(n);
  for (const Cube& c : comp_lo.cubes()) result.add(c.intersect(lo));
  for (const Cube& c : comp_hi.cubes()) result.add(c.intersect(hi));
  result.remove_single_cube_contained();
  return result;
}

}  // namespace rdc
