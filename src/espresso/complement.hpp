// Cover complementation by the unate recursive paradigm.
#pragma once

#include "pla/cover.hpp"

namespace rdc {

/// Returns a cover of the complement of `cover` (over the same variables).
/// The result is cleaned with single-cube containment but not minimized.
Cover complement(const Cover& cover);

/// Complement of a single cube by De Morgan expansion.
Cover complement_cube(const Cube& c, unsigned num_inputs);

}  // namespace rdc
