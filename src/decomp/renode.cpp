#include "decomp/renode.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "aig/simulate.hpp"
#include "decomp/aig_eval.hpp"
#include "espresso/espresso.hpp"
#include "reliability/assignment.hpp"
#include "sop/factor.hpp"

namespace rdc {
namespace {

using aiglit::is_complemented;
using aiglit::negate;
using aiglit::node_of;

class Renoder {
 public:
  Renoder(const Aig& aig, const RenodeOptions& options)
      : aig_(aig), options_(options), sim_(aig), dst_(aig.num_inputs()) {}

  RenodeResult run() {
    mark_roots();
    RenodeResult result{Aig(aig_.num_inputs()), 0, 0, 0, 0};
    for (std::uint32_t node = aig_.num_inputs() + 1; node < aig_.num_nodes();
         ++node) {
      if (!is_root_[node]) continue;
      ++result.nodes_total;
      process_root(node, result);
    }
    for (const std::uint32_t out : aig_.outputs())
      dst_.add_output(map_literal(out));
    result.network = std::move(dst_);
    return result;
  }

 private:
  void mark_roots() {
    const std::vector<unsigned> fanout = aig_.fanout_counts();
    is_root_.assign(aig_.num_nodes(), false);
    for (std::uint32_t node = aig_.num_inputs() + 1; node < aig_.num_nodes();
         ++node)
      is_root_[node] = fanout[node] > 1;
    for (const std::uint32_t out : aig_.outputs())
      if (aig_.is_and(node_of(out))) is_root_[node_of(out)] = true;
  }

  /// Old literal -> new literal, for PIs, constants and processed roots.
  std::uint32_t map_literal(std::uint32_t lit) const {
    const std::uint32_t node = node_of(lit);
    std::uint32_t mapped;
    if (node == 0) {
      mapped = aiglit::kFalse;
    } else if (!aig_.is_and(node)) {
      mapped = dst_.input_literal(node - 1);
    } else {
      mapped = mapping_.at(node);
    }
    return is_complemented(lit) ? negate(mapped) : mapped;
  }

  /// Boundary signal nodes of the tree rooted at `root` (distinct, in DFS
  /// discovery order).
  std::vector<std::uint32_t> collect_leaves(std::uint32_t root) const {
    std::vector<std::uint32_t> leaves;
    std::vector<std::uint32_t> stack{root};
    while (!stack.empty()) {
      const std::uint32_t node = stack.back();
      stack.pop_back();
      for (const std::uint32_t edge :
           {aig_.fanin0(node), aig_.fanin1(node)}) {
        const std::uint32_t child = node_of(edge);
        if (aig_.is_and(child) && !is_root_[child]) {
          stack.push_back(child);
        } else if (std::find(leaves.begin(), leaves.end(), child) ==
                   leaves.end()) {
          leaves.push_back(child);
        }
      }
    }
    return leaves;
  }

  void process_root(std::uint32_t root, RenodeResult& result) {
    const std::vector<std::uint32_t> leaves = collect_leaves(root);
    if (leaves.empty() || leaves.size() > options_.max_node_inputs) {
      mapping_[root] = copy_structural(root);
      return;
    }

    // Extract the local function over the boundary signals; patterns never
    // produced by any primary-input vector are satisfiability DCs.
    const unsigned k = static_cast<unsigned>(leaves.size());
    TernaryTruthTable local(k);
    for (std::uint32_t p = 0; p < local.size(); ++p)
      local.set_phase(p, Phase::kDc);
    for (std::uint32_t m = 0; m < sim_.num_vectors(); ++m) {
      std::uint32_t pattern = 0;
      for (unsigned i = 0; i < k; ++i)
        if (sim_.literal_value(aiglit::make(leaves[i], false), m))
          pattern |= 1u << i;
      const bool root_value =
          sim_.literal_value(aiglit::make(root, false), m);
      local.set_phase(pattern, root_value ? Phase::kOne : Phase::kZero);
    }

    const std::uint32_t dc_count = local.dc_count();
    result.sdc_patterns += dc_count;
    if (dc_count == 0) {
      // Fully observable node: nothing to reassign; keep structure.
      mapping_[root] = copy_structural(root);
      return;
    }
    if (options_.reliability_assign)
      result.dcs_assigned += lcf_assign(local, options_.lcf_threshold).assigned;

    const Cover cover = minimize(local);
    std::vector<std::uint32_t> leaf_lits;
    leaf_lits.reserve(leaves.size());
    for (const std::uint32_t leaf : leaves)
      leaf_lits.push_back(map_literal(aiglit::make(leaf, false)));
    mapping_[root] = dst_.build(factor(cover), leaf_lits);
    ++result.nodes_resynthesized;
  }

  /// Verbatim structural copy of the tree rooted at `root`.
  std::uint32_t copy_structural(std::uint32_t root) {
    return copy_edge(aiglit::make(root, false), root);
  }

  std::uint32_t copy_edge(std::uint32_t edge, std::uint32_t current_root) {
    const std::uint32_t node = node_of(edge);
    std::uint32_t mapped;
    if (!aig_.is_and(node) || (is_root_[node] && node != current_root)) {
      return map_literal(edge);
    }
    mapped = dst_.make_and(copy_edge(aig_.fanin0(node), current_root),
                           copy_edge(aig_.fanin1(node), current_root));
    return is_complemented(edge) ? negate(mapped) : mapped;
  }

  const Aig& aig_;
  RenodeOptions options_;
  AigSimulator sim_;
  Aig dst_;
  std::vector<bool> is_root_;
  std::unordered_map<std::uint32_t, std::uint32_t> mapping_;
};

}  // namespace

RenodeResult renode_and_assign(const Aig& aig, const RenodeOptions& options) {
  if (aig.num_inputs() > TernaryTruthTable::kMaxInputs)
    throw std::invalid_argument("renode_and_assign: too many inputs");
  return Renoder(aig, options).run();
}

double internal_error_rate(const Aig& aig, unsigned samples, Rng& rng) {
  const std::uint32_t first_and = aig.num_inputs() + 1;
  const std::uint32_t num_ands =
      static_cast<std::uint32_t>(aig.num_nodes()) - first_and;
  if (num_ands == 0 || samples == 0) return 0.0;

  unsigned propagated = 0;
  for (unsigned s = 0; s < samples; ++s) {
    const auto m =
        static_cast<std::uint32_t>(rng.below(num_minterms(aig.num_inputs())));
    const std::uint32_t node =
        first_and + static_cast<std::uint32_t>(rng.below(num_ands));
    const std::vector<bool> base = evaluate_all(aig, m);
    const std::vector<bool> flipped =
        evaluate_all(aig, m, node, !base[node]);
    if (output_values(aig, base) != output_values(aig, flipped)) ++propagated;
  }
  return static_cast<double>(propagated) / samples;
}

}  // namespace rdc
