// Parameterized property sweeps across function sizes and DC densities:
// cross-module invariants that must hold for every (n, density, seed)
// combination.
#include <gtest/gtest.h>

#include <tuple>

#include "bdd/bdd_ops.hpp"
#include "common/rng.hpp"
#include "espresso/complement.hpp"
#include "espresso/espresso.hpp"
#include "flow/synthesis_flow.hpp"
#include "reliability/assignment.hpp"
#include "reliability/complexity.hpp"
#include "reliability/error_rate.hpp"
#include "reliability/estimates.hpp"
#include "sop/factor.hpp"

namespace rdc {
namespace {

// (num_inputs, dc_density_percent, seed)
using Params = std::tuple<unsigned, int, int>;

class FunctionProperty : public ::testing::TestWithParam<Params> {
 protected:
  TernaryTruthTable make_function() const {
    const auto [n, dc_percent, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + n * 31 + dc_percent);
    TernaryTruthTable f(n);
    const double dc_prob = dc_percent / 100.0;
    for (std::uint32_t m = 0; m < f.size(); ++m) {
      if (rng.flip(dc_prob))
        f.set_phase(m, Phase::kDc);
      else
        f.set_phase(m, rng.flip(0.5) ? Phase::kOne : Phase::kZero);
    }
    return f;
  }
};

TEST_P(FunctionProperty, EspressoCoverIsValid) {
  const TernaryTruthTable f = make_function();
  const Cover cover = minimize(f);
  EXPECT_TRUE(cover_is_valid_for(cover, f));
  EXPECT_LE(cover.size(), f.on_count());
}

TEST_P(FunctionProperty, ComplementIsExact) {
  const TernaryTruthTable f = make_function();
  const Cover on = Cover::from_phase(f, Phase::kOne);
  const Cover comp = complement(on);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    EXPECT_EQ(comp.covers_minterm(m), !f.is_on(m));
}

TEST_P(FunctionProperty, FactoredFormMatchesCover) {
  const TernaryTruthTable f = make_function();
  const Cover cover = minimize(f);
  const FactorTree tree = factor(cover);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    EXPECT_EQ(evaluate(tree, m), cover.covers_minterm(m));
}

TEST_P(FunctionProperty, ErrorBoundsOrdered) {
  const TernaryTruthTable f = make_function();
  const ErrorBounds bounds = exact_error_bounds(f);
  EXPECT_LE(bounds.min_rate(), bounds.max_rate() + 1e-15);
  EXPECT_GE(bounds.min_rate(), 0.0);
  EXPECT_LE(bounds.max_rate(), 1.0);
}

TEST_P(FunctionProperty, EstimatesOrdered) {
  const TernaryTruthTable f = make_function();
  const EstimatedBounds signal = signal_probability_bounds(f);
  const EstimatedBounds border = border_bounds(f);
  EXPECT_LE(signal.min, signal.max + 1e-12);
  EXPECT_LE(border.min, border.max + 1e-12);
}

TEST_P(FunctionProperty, ComplexityFactorInUnitInterval) {
  const TernaryTruthTable f = make_function();
  const double cf = complexity_factor(f);
  EXPECT_GE(cf, 0.0);
  EXPECT_LE(cf, 1.0);
  // Local factors average out near the neighborhood-weighted global value;
  // each individually stays in [0, 1].
  const NeighborTable neighbors(f);
  for (std::uint32_t m = 0; m < std::min<std::uint32_t>(f.size(), 64); ++m) {
    const double lcf = local_complexity_factor(f, neighbors, m);
    EXPECT_GE(lcf, 0.0);
    EXPECT_LE(lcf, 1.0);
  }
}

TEST_P(FunctionProperty, RankingAssignMonotoneInFraction) {
  const TernaryTruthTable f = make_function();
  std::uint32_t previous = 0;
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    TernaryTruthTable g = f;
    const AssignmentResult r = ranking_assign(g, fraction);
    EXPECT_GE(r.assigned, previous);
    previous = r.assigned;
  }
}

TEST_P(FunctionProperty, RankingNeverTouchesCareMinterms) {
  const TernaryTruthTable f = make_function();
  TernaryTruthTable g = f;
  ranking_assign(g, 1.0);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    if (f.is_care(m)) EXPECT_EQ(g.phase(m), f.phase(m));
}

TEST_P(FunctionProperty, LcfThresholdMonotone) {
  const TernaryTruthTable f = make_function();
  std::uint32_t previous = 0;
  for (const double threshold : {0.0, 0.35, 0.55, 0.75, 1.01}) {
    TernaryTruthTable g = f;
    const AssignmentResult r = lcf_assign(g, threshold);
    EXPECT_GE(r.assigned, previous);
    previous = r.assigned;
  }
}

TEST_P(FunctionProperty, SymbolicMetricsAgree) {
  const TernaryTruthTable f = make_function();
  if (f.num_inputs() > 10) GTEST_SKIP();
  BddManager mgr(f.num_inputs());
  const SymbolicSpec sym = to_symbolic(mgr, f);
  EXPECT_NEAR(symbolic_complexity_factor(mgr, sym), complexity_factor(f),
              1e-9);
  const BorderCounts tt_borders = count_borders(f);
  const BorderCounts bdd_borders = symbolic_borders(mgr, sym);
  EXPECT_EQ(tt_borders.b0, bdd_borders.b0);
  EXPECT_EQ(tt_borders.b1, bdd_borders.b1);
  EXPECT_EQ(tt_borders.bdc, bdd_borders.bdc);
}

TEST_P(FunctionProperty, ConventionalAssignmentWithinBounds) {
  const TernaryTruthTable f = make_function();
  const ErrorBounds bounds = exact_error_bounds(f);
  TernaryTruthTable g = f;
  conventional_assign(g);
  const double rate = exact_error_rate(g, f);
  EXPECT_GE(rate, bounds.min_rate() - 1e-12);
  EXPECT_LE(rate, bounds.max_rate() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunctionProperty,
    ::testing::Combine(::testing::Values(4u, 6u, 8u),
                       ::testing::Values(0, 30, 60, 90),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_dc" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

// Flow-level properties on small multi-output specs.
class FlowProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlowProperty, CareSetRespectedUnderEveryPolicy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  IncompleteSpec spec("p", 5, 2);
  for (auto& f : spec.outputs())
    for (std::uint32_t m = 0; m < f.size(); ++m)
      f.set_phase(m, static_cast<Phase>(rng.below(3)));
  for (const DcPolicy policy :
       {DcPolicy::kConventional, DcPolicy::kRankingFraction,
        DcPolicy::kRankingIncremental, DcPolicy::kLcfThreshold,
        DcPolicy::kAllReliability}) {
    const FlowResult result = run_flow(spec, policy);
    for (unsigned o = 0; o < spec.num_outputs(); ++o) {
      for (std::uint32_t m = 0; m < spec.output(o).size(); ++m) {
        if (!spec.output(o).is_care(m)) continue;
        ASSERT_EQ(result.implementation.output(o).is_on(m),
                  spec.output(o).is_on(m));
      }
      ASSERT_EQ(result.netlist.output_table(o),
                result.implementation.output(o));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowProperty, ::testing::Range(1, 6));

}  // namespace
}  // namespace rdc
