#include "flow/pass.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "aig/balance.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "decomp/renode.hpp"
#include "mapper/tree_map.hpp"
#include "obs/counters.hpp"
#include "reliability/complexity.hpp"
#include "reliability/error_rate.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/sampling.hpp"
#include "sop/extract.hpp"

namespace rdc::flow {

const char* artifact_name(Artifact artifact) {
  switch (artifact) {
    case Artifact::kAssigned: return "assigned";
    case Artifact::kCovers: return "covers";
    case Artifact::kFactors: return "factors";
    case Artifact::kAig: return "aig";
    case Artifact::kNetlist: return "netlist";
    case Artifact::kStats: return "stats";
    case Artifact::kErrorRate: return "error_rate";
  }
  return "unknown";
}

Design::Design(IncompleteSpec spec, FlowOptions options)
    : spec_(std::move(spec)),
      options_(options),
      working_(spec_),
      aig_(spec_.num_inputs()),
      netlist_(spec_.num_inputs()) {
  // The working copy of the spec is a legitimate starting artifact: a
  // pipeline may begin at `espresso` with whatever assignment the input
  // already carries (that is what synthesize() does).
  valid_ = bit(Artifact::kAssigned);
}

const CellLibrary& Design::library() const {
  return options_.library != nullptr ? *options_.library
                                     : CellLibrary::generic70();
}

void Design::produced(Artifact artifact) {
  invalidate(artifact);
  valid_ |= bit(artifact);
}

void Design::invalidate(Artifact artifact) {
  // Clear `artifact` and every later one in the chain.
  const unsigned first = static_cast<unsigned>(artifact);
  for (unsigned a = first; a < kNumArtifacts; ++a)
    valid_ &= ~(1u << a);
}

std::span<const NeighborTable> Design::spec_neighbors() {
  if (!spec_neighbors_built_) {
    spec_neighbors_.reserve(spec_.num_outputs());
    for (const TernaryTruthTable& f : spec_.outputs())
      spec_neighbors_.emplace_back(f);
    spec_neighbors_built_ = true;
  }
  return spec_neighbors_;
}

ErrorRateTracker& Design::error_tracker() {
  if (!error_tracker_.bound()) error_tracker_ = ErrorRateTracker(spec_);
  return error_tracker_;
}

const reliability::FaultModel& Design::fault_model(
    const reliability::FaultModelSpec& model) {
  for (const auto& [spec, analyzer] : fault_models_)
    if (spec == model) return *analyzer;
  fault_models_.emplace_back(model, reliability::make_fault_model(model));
  return *fault_models_.back().second;
}

exec::Status Pass::set_fault_model(const reliability::FaultModelSpec&) {
  return exec::Status(exec::StatusCode::kInvalidArgument,
                      std::string("pass '") + name() +
                          "' does not accept a fault model annotation");
}

exec::Status Design::require(Artifact artifact, const char* who) const {
  if (has(artifact)) return {};
  return exec::Status(exec::StatusCode::kInvalidArgument,
                      std::string(who) + ": requires the '" +
                          artifact_name(artifact) +
                          "' artifact; run a pass that produces it first");
}

std::string format_double(double value) {
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc()) return "0";
  return std::string(buffer, end);
}

namespace {

exec::Status invalid(std::string message) {
  return exec::Status(exec::StatusCode::kInvalidArgument, std::move(message));
}

bool parse_double_arg(const std::string& text, double& out) {
  const char* begin = text.c_str();
  char* end = nullptr;
  out = std::strtod(begin, &end);
  return end == begin + text.size() && !text.empty();
}

bool parse_unsigned_arg(const std::string& text, unsigned& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

// --- DC assignment -------------------------------------------------------

/// Model-aware generalization of ranking_assign: candidates are ranked by
/// |if_on - if_off| event mass under the chosen fault model and assigned to
/// the phase adding the smaller mass. With bitflip(1) events (if_on = off
/// neighbors, if_off = on neighbors) this reproduces the paper's ranked
/// list decision-for-decision; the default pipeline still routes through
/// the integer ranking_assign path, so its reports stay bit-identical.
AssignmentResult model_ranking_assign(IncompleteSpec& working,
                                      const IncompleteSpec& spec,
                                      double fraction,
                                      std::span<const NeighborTable> tables,
                                      const reliability::FaultModel& model) {
  struct Candidate {
    std::uint32_t minterm;
    double weight;
    bool to_on;
  };
  AssignmentResult total;
  for (unsigned o = 0; o < working.num_outputs(); ++o) {
    TernaryTruthTable& f = working.output(o);
    total.dc_before += f.dc_count();
    const TernaryTruthTable& g = spec.output(o);
    const std::vector<std::uint32_t> dcs = g.dc_minterms();
    const std::vector<reliability::MintermEvents> events =
        model.dc_assignment_events(g, tables[o]);
    std::vector<Candidate> list;
    for (std::size_t i = 0; i < dcs.size(); ++i) {
      const double w = std::abs(events[i].if_on - events[i].if_off);
      if (w > 0.0)
        list.push_back({dcs[i], w, events[i].if_on < events[i].if_off});
    }
    std::stable_sort(list.begin(), list.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.weight > b.weight;
                     });
    const auto count = std::min(
        list.size(), static_cast<std::size_t>(std::llround(
                         fraction * static_cast<double>(list.size()))));
    for (std::size_t i = 0; i < count; ++i) {
      f.set_phase(list[i].minterm,
                  list[i].to_on ? Phase::kOne : Phase::kZero);
      ++total.assigned;
      if (list[i].to_on) ++total.assigned_on;
    }
  }
  obs::count(obs::Counter::kDcRankingAssigned, total.assigned);
  return total;
}

/// Model-aware lcf_assign: the LC^f admission gate is unchanged (it
/// measures spec structure, not the fault scenario); the phase decision and
/// the tie filter use the model's event masses instead of neighbor counts.
AssignmentResult model_lcf_assign(IncompleteSpec& working,
                                  const IncompleteSpec& spec, double threshold,
                                  bool assign_balanced,
                                  std::span<const NeighborTable> tables,
                                  const reliability::FaultModel& model) {
  AssignmentResult total;
  for (unsigned o = 0; o < working.num_outputs(); ++o) {
    TernaryTruthTable& f = working.output(o);
    total.dc_before += f.dc_count();
    const TernaryTruthTable& g = spec.output(o);
    const std::vector<std::uint32_t> dcs = g.dc_minterms();
    const std::vector<reliability::MintermEvents> events =
        model.dc_assignment_events(g, tables[o]);
    for (std::size_t i = 0; i < dcs.size(); ++i) {
      if (local_complexity_factor(g, tables[o], dcs[i]) >= threshold)
        continue;
      if (!assign_balanced && events[i].if_on == events[i].if_off) continue;
      const bool to_on = events[i].if_on < events[i].if_off;
      f.set_phase(dcs[i], to_on ? Phase::kOne : Phase::kZero);
      ++total.assigned;
      if (to_on) ++total.assigned_on;
    }
  }
  obs::count(obs::Counter::kDcLcfAssigned, total.assigned);
  return total;
}

class AssignPass final : public Pass {
 public:
  enum class Kind { kConventional, kRanking, kRankingInc, kLcf, kAll, kZero };

  AssignPass(Kind kind, double param, bool balanced)
      : kind_(kind), param_(param), balanced_(balanced) {}

  const char* name() const override {
    switch (kind_) {
      case Kind::kConventional: return "assign:conventional";
      case Kind::kRanking: return "assign:ranking";
      case Kind::kRankingInc: return "assign:ranking_inc";
      case Kind::kLcf: return "assign:lcf";
      case Kind::kAll: return "assign:all";
      case Kind::kZero: return "assign:zero";
    }
    return "assign";
  }

  const char* phase() const override { return "dc_assign"; }

  std::string spec() const override {
    switch (kind_) {
      case Kind::kRanking:
      case Kind::kRankingInc:
        return std::string(name()) + "(" + format_double(param_) + ")" +
               model_suffix();
      case Kind::kLcf:
        return std::string(name()) + "(" + format_double(param_) +
               (balanced_ ? ",balanced)" : ")") + model_suffix();
      case Kind::kAll:
        return std::string(name()) + model_suffix();
      default:
        return name();
    }
  }

  exec::Status set_fault_model(
      const reliability::FaultModelSpec& model) override {
    switch (kind_) {
      case Kind::kRanking:
      case Kind::kRankingInc:
      case Kind::kLcf:
      case Kind::kAll:
        return accept_fault_model(model);
      default:
        // conventional/zero never consult a fault model — annotating them
        // would silently do nothing, so reject like any other pass.
        return Pass::set_fault_model(model);
    }
  }

  exec::Status run(Design& design) override {
    design.reset_working();
    IncompleteSpec& working = design.working();
    AssignmentResult result;
    const char* policy = "";
    const reliability::FaultModelSpec& model = effective_fault_model(design);
    const bool reliability_kind =
        kind_ == Kind::kRanking || kind_ == Kind::kRankingInc ||
        kind_ == Kind::kLcf || kind_ == Kind::kAll;
    // An explicit annotation or a non-default options model stamps the
    // report; only a genuinely non-default model leaves the paper's
    // integer paths (an explicit @bitflip makes identical decisions there).
    const bool model_aware = reliability_kind && !model.is_default();
    if (reliability_kind && (fault_model().has_value() || !model.is_default()))
      design.fault_model_label = model.canonical();
    switch (kind_) {
      case Kind::kConventional:
        // All DCs stay with the downstream minimizer (the baseline).
        policy = "conventional";
        break;
      // The reliability policies hand in the Design's cached per-output
      // NeighborTables: reset_working() just made working == spec, and all
      // of them evaluate their metrics on the input specification, so the
      // tables stay valid however often the pass re-runs.
      case Kind::kRanking:
        result = model_aware
                     ? model_ranking_assign(working, design.spec(), param_,
                                            design.spec_neighbors(),
                                            design.fault_model(model))
                     : ranking_assign(working, param_,
                                      design.spec_neighbors());
        policy = "ranking_fraction";
        break;
      case Kind::kRankingInc:
        // Incremental neighbor-count maintenance is a bitflip(1)-specific
        // optimization; any other model falls back to the static
        // model-aware ranking (same decisions, non-incremental cost).
        result = model_aware
                     ? model_ranking_assign(working, design.spec(), param_,
                                            design.spec_neighbors(),
                                            design.fault_model(model))
                     : ranking_assign_incremental(working, param_,
                                                  design.spec_neighbors());
        policy = "ranking_incremental";
        break;
      case Kind::kLcf:
        result = model_aware
                     ? model_lcf_assign(working, design.spec(), param_,
                                        balanced_, design.spec_neighbors(),
                                        design.fault_model(model))
                     : lcf_assign(working, param_, balanced_,
                                  design.spec_neighbors());
        policy = "lcf_threshold";
        break;
      case Kind::kAll:
        result = model_aware
                     ? model_ranking_assign(working, design.spec(), 1.0,
                                            design.spec_neighbors(),
                                            design.fault_model(model))
                     : ranking_assign(working, 1.0, design.spec_neighbors());
        policy = "all_reliability";
        break;
      case Kind::kZero:
        // Degradation-ladder fallback: every remaining DC to the paper's
        // power-friendly default phase, no ranking work at all. Leaves the
        // report's assignment statistics untouched.
        for (auto& f : working.outputs())
          for (const std::uint32_t m : f.dc_minterms())
            f.set_phase(m, Phase::kZero);
        design.produced(Artifact::kAssigned);
        return {};
    }
    design.assignment = result;
    design.has_assignment = true;
    design.policy = policy;
    design.produced(Artifact::kAssigned);
    return {};
  }

 private:
  Kind kind_;
  double param_;
  bool balanced_;
};

// --- covers --------------------------------------------------------------

class EspressoPass final : public Pass {
 public:
  /// `max_iterations` < 0 inherits Design::espresso (the ladder's dial).
  explicit EspressoPass(int max_iterations) : max_iterations_(max_iterations) {}

  const char* name() const override { return "espresso"; }
  const char* phase() const override { return "espresso"; }

  std::string spec() const override {
    if (max_iterations_ < 0) return name();
    return "espresso(" + std::to_string(max_iterations_) + ")";
  }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kAssigned, name()); !s.ok())
      return s;
    EspressoOptions options = design.espresso;
    if (max_iterations_ >= 0)
      options.max_iterations = static_cast<unsigned>(max_iterations_);
    IncompleteSpec& working = design.working();
    // Conventional assignment of whatever an upstream reliability pass
    // left as DC — exactly what handing the partially assigned .pla to the
    // optimizer does in the paper's flow. Outputs are independent, so the
    // ESPRESSO passes fan out over the process-wide pool (RDC_THREADS).
    design.covers().assign(working.num_outputs(), Cover(working.num_inputs()));
    ThreadPool::global().parallel_for(
        0, working.num_outputs(), [&](std::uint64_t o) {
          design.covers()[o] = conventional_assign(
              working.output(static_cast<unsigned>(o)), options);
        });
    design.produced(Artifact::kCovers);
    return {};
  }

 private:
  int max_iterations_;
};

class MintermCoversPass final : public Pass {
 public:
  const char* name() const override { return "covers:minterm"; }
  /// Untimed: the pre-pass-manager fallback built these covers outside any
  /// report phase, and raw minterm listing is not a flow phase worth a row.
  const char* phase() const override { return nullptr; }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kAssigned, name()); !s.ok())
      return s;
    design.covers().clear();
    design.covers().reserve(design.working().num_outputs());
    for (const auto& f : design.working().outputs())
      design.covers().push_back(Cover::from_phase(f, Phase::kOne));
    design.produced(Artifact::kCovers);
    return {};
  }
};

// --- restructuring -------------------------------------------------------

class FactorPass final : public Pass {
 public:
  const char* name() const override { return "factor"; }
  const char* phase() const override { return "factor_aig"; }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kCovers, name()); !s.ok())
      return s;
    design.factors().clear();
    design.factors().reserve(design.covers().size());
    for (const Cover& cover : design.covers())
      design.factors().push_back(factor(cover));
    design.produced(Artifact::kFactors);
    return {};
  }
};

class ExtractPass final : public Pass {
 public:
  explicit ExtractPass(unsigned max_kernels) : max_kernels_(max_kernels) {}

  const char* name() const override { return "extract"; }
  const char* phase() const override { return "factor_aig"; }

  std::string spec() const override {
    if (max_kernels_ == kDefaultMaxKernels) return name();
    return "extract(" + std::to_string(max_kernels_) + ")";
  }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kCovers, name()); !s.ok())
      return s;
    Aig aig(design.spec().num_inputs());
    const ExtractionResult extraction =
        build_with_extraction(aig, design.covers(), max_kernels_);
    for (const std::uint32_t out : extraction.outputs) aig.add_output(out);
    design.aig() = std::move(aig);
    design.produced(Artifact::kAig);
    return {};
  }

  static constexpr unsigned kDefaultMaxKernels = 32;

 private:
  unsigned max_kernels_;
};

class AigPass final : public Pass {
 public:
  const char* name() const override { return "aig"; }
  const char* phase() const override { return "factor_aig"; }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kFactors, name()); !s.ok())
      return s;
    Aig aig(design.spec().num_inputs());
    for (const FactorTree& tree : design.factors())
      aig.add_output(aig.build(tree));
    design.aig() = std::move(aig);
    design.produced(Artifact::kAig);
    return {};
  }
};

class BalancePass final : public Pass {
 public:
  const char* name() const override { return "balance"; }
  const char* phase() const override { return "factor_aig"; }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kAig, name()); !s.ok())
      return s;
    design.aig() = balance(design.aig());
    design.produced(Artifact::kAig);
    return {};
  }
};

class ResynPass final : public Pass {
 public:
  const char* name() const override { return "resyn"; }
  const char* phase() const override { return "factor_aig"; }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kAig, name()); !s.ok())
      return s;
    // Second-opinion restructuring: balance, refactor nodes against their
    // satisfiability DCs (output-preserving), keep the result only when it
    // shrinks, balance again.
    Aig aig = balance(design.aig());
    RenodeOptions options;
    options.reliability_assign = false;
    RenodeResult refactored = renode_and_assign(aig, options);
    if (refactored.network.num_ands() < aig.num_ands())
      aig = std::move(refactored.network);
    design.aig() = balance(aig);
    design.produced(Artifact::kAig);
    return {};
  }
};

// --- mapping and analysis ------------------------------------------------

class MapPass final : public Pass {
 public:
  explicit MapPass(MapObjective objective) : objective_(objective) {}

  const char* name() const override {
    return objective_ == MapObjective::kDelay ? "map:delay" : "map:power";
  }
  const char* phase() const override { return "map"; }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kAig, name()); !s.ok())
      return s;
    // The pre-map AIG size is the report's structural metric; stamped here
    // so it reflects whatever balancing/resynthesis ran upstream.
    obs::count(obs::Counter::kAigAndsBuilt, design.aig().num_ands());
    design.report.metrics.set("aig_ands", design.aig().num_ands());
    MapOptions options;
    options.objective = objective_;
    design.netlist() = map_aig(design.aig(), design.library(), options);
    design.produced(Artifact::kNetlist);
    return {};
  }

 private:
  MapObjective objective_;
};

class AnalyzePass final : public Pass {
 public:
  const char* name() const override { return "analyze"; }
  const char* phase() const override { return "analyze"; }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kNetlist, name()); !s.ok())
      return s;
    design.stats = analyze_netlist(design.netlist(), design.library());
    design.produced(Artifact::kStats);
    return {};
  }
};

/// Largest input count the exact estimator is asked to handle before the
/// `error_rate` pass switches itself to the sampled estimator. Specs today
/// are capped at kMaxInputs = 20, so the exact path always wins; the policy
/// is what keeps the pass meaningful if that cap is ever lifted.
constexpr unsigned kExactErrorRateInputLimit = 20;

/// Default Monte-Carlo budget when sampling (the `error_rate:sampled(1e6)`
/// canonical default).
constexpr std::uint64_t kDefaultErrorRateSamples = 1000000;

/// Shared sampled-estimator body: seeded from FlowOptions::sample_seed so
/// the report is byte-deterministic for a fixed (spec, pipeline, seed).
/// `model` null selects the default bitflip(1) estimator (the pre-§16 code
/// path, kept verbatim so default reports stay byte-identical).
void run_sampled_error_rate(Design& design, std::uint64_t samples,
                            const reliability::FaultModel* model = nullptr) {
  Rng rng(design.options().sample_seed);
  const SampledRate estimate =
      model != nullptr
          ? model->sampled_rate(design.working(), design.spec(), samples, rng)
          : sampled_error_rate_ci(design.working(), design.spec(), 1, samples,
                                  rng);
  design.error_rate = estimate.rate;
  design.estimator.sampled = true;
  design.estimator.ci_low = estimate.ci_low;
  design.estimator.ci_high = estimate.ci_high;
  design.estimator.samples = estimate.samples;
}

class ErrorRatePass final : public Pass {
 public:
  const char* name() const override { return "error_rate"; }
  const char* phase() const override { return "error_rate"; }

  std::string spec() const override {
    return std::string(name()) + model_suffix();
  }

  exec::Status set_fault_model(
      const reliability::FaultModelSpec& model) override {
    return accept_fault_model(model);
  }

  exec::Status run(Design& design) override {
    // The covers pass is what completes the working spec, which doubles as
    // the implementation the exact rate is measured on.
    if (exec::Status s = design.require(Artifact::kCovers, name()); !s.ok())
      return s;
    const reliability::FaultModelSpec& model = effective_fault_model(design);
    if (fault_model().has_value() || !model.is_default())
      design.fault_model_label = model.canonical();
    if (!model.is_default()) {
      const reliability::FaultModel& analyzer = design.fault_model(model);
      if (design.spec().num_inputs() > kExactErrorRateInputLimit) {
        run_sampled_error_rate(design, kDefaultErrorRateSamples, &analyzer);
      } else {
        design.error_rate =
            analyzer.error_rate(design.working(), design.spec());
        design.estimator = {};
      }
      design.produced(Artifact::kErrorRate);
      return {};
    }
    if (design.spec().num_inputs() > kExactErrorRateInputLimit) {
      run_sampled_error_rate(design, kDefaultErrorRateSamples);
      design.produced(Artifact::kErrorRate);
      return {};
    }
    // The tracker's update is bit-identical to exact_error_rate and throws
    // the same invalid_argument when the working spec is not completely
    // specified; on repeat evaluations it only pays for the minterms whose
    // phase changed since the last one.
    design.error_rate = design.error_tracker().update(design.working());
    design.estimator = {};
    design.produced(Artifact::kErrorRate);
    return {};
  }
};

class ErrorRateSampledPass final : public Pass {
 public:
  explicit ErrorRateSampledPass(std::uint64_t samples) : samples_(samples) {}

  const char* name() const override { return "error_rate:sampled"; }
  const char* phase() const override { return "error_rate"; }

  std::string spec() const override {
    if (samples_ == kDefaultErrorRateSamples)
      return std::string(name()) + model_suffix();
    return std::string(name()) + "(" + std::to_string(samples_) + ")" +
           model_suffix();
  }

  exec::Status set_fault_model(
      const reliability::FaultModelSpec& model) override {
    return accept_fault_model(model);
  }

  exec::Status run(Design& design) override {
    if (exec::Status s = design.require(Artifact::kCovers, name()); !s.ok())
      return s;
    const reliability::FaultModelSpec& model = effective_fault_model(design);
    if (fault_model().has_value() || !model.is_default())
      design.fault_model_label = model.canonical();
    run_sampled_error_rate(
        design, samples_,
        model.is_default() ? nullptr : &design.fault_model(model));
    design.produced(Artifact::kErrorRate);
    return {};
  }

 private:
  std::uint64_t samples_;
};

// --- factory -------------------------------------------------------------

exec::Status check_arity(const std::string& name,
                         const std::vector<std::string>& args,
                         std::size_t max_args) {
  if (args.size() <= max_args) return {};
  return invalid("pass '" + name + "' takes at most " +
                 std::to_string(max_args) + " argument" +
                 (max_args == 1 ? "" : "s"));
}

exec::Status make_assign(AssignPass::Kind kind, const std::string& name,
                         const std::vector<std::string>& args, double fallback,
                         std::unique_ptr<Pass>& out) {
  const bool takes_param =
      kind == AssignPass::Kind::kRanking ||
      kind == AssignPass::Kind::kRankingInc || kind == AssignPass::Kind::kLcf;
  const bool takes_balanced = kind == AssignPass::Kind::kLcf;
  if (exec::Status s =
          check_arity(name, args, takes_param ? (takes_balanced ? 2 : 1) : 0);
      !s.ok())
    return s;
  double param = fallback;
  bool balanced = false;
  if (!args.empty()) {
    if (!parse_double_arg(args[0], param))
      return invalid("pass '" + name + "': '" + args[0] +
                     "' is not a number");
    if (kind == AssignPass::Kind::kLcf) {
      if (!(param > 0.0 && param < 1.0))
        return invalid("pass '" + name + "': threshold must be in (0, 1), got " +
                       args[0]);
    } else if (!(param >= 0.0 && param <= 1.0)) {
      return invalid("pass '" + name + "': fraction must be in [0, 1], got " +
                     args[0]);
    }
  }
  if (args.size() > 1) {
    if (args[1] != "balanced")
      return invalid("pass '" + name + "': unknown flag '" + args[1] +
                     "' (expected 'balanced')");
    balanced = true;
  }
  out = std::make_unique<AssignPass>(kind, param, balanced);
  return {};
}

}  // namespace

exec::Status make_pass(const std::string& name,
                       const std::vector<std::string>& args,
                       std::unique_ptr<Pass>& out) {
  out.reset();
  if (name == "assign:conventional")
    return make_assign(AssignPass::Kind::kConventional, name, args, 0.0, out);
  if (name == "assign:ranking")
    return make_assign(AssignPass::Kind::kRanking, name, args, 0.5, out);
  if (name == "assign:ranking_inc")
    return make_assign(AssignPass::Kind::kRankingInc, name, args, 0.5, out);
  if (name == "assign:lcf")
    return make_assign(AssignPass::Kind::kLcf, name, args, 0.55, out);
  if (name == "assign:all")
    return make_assign(AssignPass::Kind::kAll, name, args, 0.0, out);
  if (name == "assign:zero")
    return make_assign(AssignPass::Kind::kZero, name, args, 0.0, out);
  if (name == "espresso") {
    if (exec::Status s = check_arity(name, args, 1); !s.ok()) return s;
    int max_iterations = -1;
    if (!args.empty()) {
      unsigned value = 0;
      if (!parse_unsigned_arg(args[0], value) || value > 1000)
        return invalid("pass 'espresso': '" + args[0] +
                       "' is not an iteration count in [0, 1000]");
      max_iterations = static_cast<int>(value);
    }
    out = std::make_unique<EspressoPass>(max_iterations);
    return {};
  }
  if (name == "covers:minterm") {
    if (exec::Status s = check_arity(name, args, 0); !s.ok()) return s;
    out = std::make_unique<MintermCoversPass>();
    return {};
  }
  if (name == "factor") {
    if (exec::Status s = check_arity(name, args, 0); !s.ok()) return s;
    out = std::make_unique<FactorPass>();
    return {};
  }
  if (name == "extract") {
    if (exec::Status s = check_arity(name, args, 1); !s.ok()) return s;
    unsigned max_kernels = ExtractPass::kDefaultMaxKernels;
    if (!args.empty() &&
        (!parse_unsigned_arg(args[0], max_kernels) || max_kernels == 0 ||
         max_kernels > 4096))
      return invalid("pass 'extract': '" + args[0] +
                     "' is not a kernel count in [1, 4096]");
    out = std::make_unique<ExtractPass>(max_kernels);
    return {};
  }
  if (name == "aig") {
    if (exec::Status s = check_arity(name, args, 0); !s.ok()) return s;
    out = std::make_unique<AigPass>();
    return {};
  }
  if (name == "balance") {
    if (exec::Status s = check_arity(name, args, 0); !s.ok()) return s;
    out = std::make_unique<BalancePass>();
    return {};
  }
  if (name == "resyn") {
    if (exec::Status s = check_arity(name, args, 0); !s.ok()) return s;
    out = std::make_unique<ResynPass>();
    return {};
  }
  if (name == "map:delay" || name == "map:power") {
    if (exec::Status s = check_arity(name, args, 0); !s.ok()) return s;
    out = std::make_unique<MapPass>(name == "map:delay" ? MapObjective::kDelay
                                                        : MapObjective::kArea);
    return {};
  }
  if (name == "analyze") {
    if (exec::Status s = check_arity(name, args, 0); !s.ok()) return s;
    out = std::make_unique<AnalyzePass>();
    return {};
  }
  if (name == "error_rate") {
    if (exec::Status s = check_arity(name, args, 0); !s.ok()) return s;
    out = std::make_unique<ErrorRatePass>();
    return {};
  }
  if (name == "error_rate:sampled") {
    if (exec::Status s = check_arity(name, args, 1); !s.ok()) return s;
    std::uint64_t samples = kDefaultErrorRateSamples;
    if (!args.empty()) {
      // Double grammar so scientific notation works ("1e6"), but the value
      // must be a whole draw count in [1, 1e9].
      double value = 0.0;
      if (!parse_double_arg(args[0], value) || !(value >= 1.0) ||
          !(value <= 1e9) || value != std::floor(value))
        return invalid("pass 'error_rate:sampled': '" + args[0] +
                       "' is not a sample count in [1, 1e9]");
      samples = static_cast<std::uint64_t>(value);
    }
    out = std::make_unique<ErrorRateSampledPass>(samples);
    return {};
  }
  return invalid("unknown pass '" + name + "'");
}

std::vector<std::string> pass_names() {
  return {"assign:conventional", "assign:ranking", "assign:ranking_inc",
          "assign:lcf",          "assign:all",     "assign:zero",
          "espresso",            "covers:minterm", "factor",
          "extract",             "aig",            "balance",
          "resyn",               "map:delay",      "map:power",
          "analyze",             "error_rate",     "error_rate:sampled"};
}

}  // namespace rdc::flow
