#include "exec/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/status.hpp"
#include "obs/events.hpp"

namespace rdc::exec {
namespace {

struct FaultSite {
  std::string name;
  std::uint64_t trigger = 0;  // 1-based hit index that starts throwing
  std::atomic<std::uint64_t> hits{0};

  FaultSite(std::string n, std::uint64_t t) : name(std::move(n)), trigger(t) {}
};

std::atomic<bool> g_armed{false};
std::mutex g_mutex;
// Sites are pointer-stable so fault_point can bump hit counters without
// holding g_mutex for the (contended) count itself.
std::vector<std::unique_ptr<FaultSite>>& site_table() {
  static std::vector<std::unique_ptr<FaultSite>> table;
  return table;
}

// Grammar: "site:N[,site:N...]". A bare "site" means trigger 1. Malformed
// entries are ignored rather than fatal: fault injection is a test aid and
// must never take down a production run on a typo.
void parse_spec_locked(const std::string& spec) {
  site_table().clear();
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    std::string name = entry;
    std::uint64_t trigger = 1;
    const std::size_t colon = entry.rfind(':');
    if (colon != std::string::npos) {
      name = entry.substr(0, colon);
      const std::string count = entry.substr(colon + 1);
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(count.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || count.empty() || parsed == 0)
        continue;
      trigger = parsed;
    }
    if (name.empty()) continue;
    site_table().push_back(std::make_unique<FaultSite>(name, trigger));
  }
  g_armed.store(!site_table().empty(), std::memory_order_release);
}

std::once_flag g_env_once;

void load_env_spec() {
  std::call_once(g_env_once, [] {
    const char* spec = std::getenv("RDC_FAULT");
    if (spec != nullptr && *spec != '\0') {
      std::lock_guard<std::mutex> lock(g_mutex);
      parse_spec_locked(spec);
    }
  });
}

}  // namespace

bool faults_armed() {
  load_env_spec();
  return g_armed.load(std::memory_order_acquire);
}

void fault_point(const char* site) {
  load_env_spec();
  if (!g_armed.load(std::memory_order_relaxed)) return;
  FaultSite* match = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    for (const auto& entry : site_table())
      if (entry->name == site) {
        match = entry.get();
        break;
      }
  }
  if (match == nullptr) return;
  const std::uint64_t hit =
      match->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit >= match->trigger) {
    if (obs::events_enabled()) {
      obs::Record fields;
      fields.set("site", site);
      fields.set("hit", hit);
      obs::emit_event("fault.fired", fields);
    }
    throw StatusError(
        Status(StatusCode::kFaultInjected,
               "injected fault at '" + std::string(site) + "' (hit " +
                   std::to_string(hit) + ")"));
  }
}

namespace testing {

void set_fault_spec(const std::string& spec) {
  load_env_spec();  // consume the env var first so it can't overwrite us
  std::lock_guard<std::mutex> lock(g_mutex);
  parse_spec_locked(spec);
}

}  // namespace testing

}  // namespace rdc::exec
