// Ablation C: balanced-tie handling in the LC^f-based assignment.
//
// The paper's Fig.-7 pseudocode reads "else x <- 0", which sends DC
// minterms with evenly split neighborhoods to the off-set. Such
// assignments cannot mask any additional input error but do constrain the
// optimizer, so the library's default leaves them unassigned. This harness
// quantifies the difference.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rdc;
  bench::Options options_cli;
  int exit_code = 0;
  if (!bench::parse_args(argc, argv, options_cli, exit_code)) return exit_code;

  bench::heading(
      "Ablation C: LC^f tie handling (skip balanced DCs vs assign to 0)");
  std::printf("%-8s | %10s %10s | %10s %10s\n", "Name", "skip a%",
              "skip er%", "lit. a%", "lit. er%");
  std::printf("--------------------------------------------------------\n");

  obs::RunReport report("ablation_ties");
  double skip_area = 0.0, skip_er = 0.0, lit_area = 0.0, lit_er = 0.0;
  std::size_t ok_circuits = 0;
  for (const IncompleteSpec& spec : bench::suite()) {
    const exec::Status status = bench::run_guarded(options_cli, [&] {
      const FlowResult conventional = run_flow(spec, DcPolicy::kConventional);

      FlowOptions skip_options;  // default: ties left to the optimizer
      const FlowResult skip =
          run_flow(spec, DcPolicy::kLcfThreshold, skip_options);

      FlowOptions literal_options;
      literal_options.lcf_assign_balanced = true;  // pseudocode-literal
      const FlowResult literal =
          run_flow(spec, DcPolicy::kLcfThreshold, literal_options);

      const double sa = bench::improvement_percent(conventional.stats.area,
                                                   skip.stats.area);
      const double se = bench::improvement_percent(conventional.error_rate,
                                                   skip.error_rate);
      const double la = bench::improvement_percent(conventional.stats.area,
                                                   literal.stats.area);
      const double le = bench::improvement_percent(conventional.error_rate,
                                                   literal.error_rate);
      skip_area += sa;
      skip_er += se;
      lit_area += la;
      lit_er += le;
      std::printf("%-8s | %10.1f %10.1f | %10.1f %10.1f\n",
                  spec.name().c_str(), sa, se, la, le);
      obs::Record& r = report.add_row();
      r.set("name", spec.name());
      r.set("status", "OK");
      r.set("skip_area_improvement", sa);
      r.set("skip_error_improvement", se);
      r.set("literal_area_improvement", la);
      r.set("literal_error_improvement", le);
    });
    if (!status.ok()) {
      bench::print_error_row(spec.name(), status);
      bench::add_error_row(report, spec.name(), status);
      continue;
    }
    ++ok_circuits;
  }
  const double n = static_cast<double>(ok_circuits == 0 ? 1 : ok_circuits);
  std::printf("%-8s | %10.1f %10.1f | %10.1f %10.1f\n", "mean",
              skip_area / n, skip_er / n, lit_area / n, lit_er / n);
  bench::note(
      "\nExpected: identical (or better) error-rate improvement with\n"
      "strictly less area overhead when balanced ties are skipped — tied\n"
      "assignments restrict the optimizer without masking anything.");
  return bench::finish(options_cli, report);
}
