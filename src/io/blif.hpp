// Berkeley Logic Interchange Format (BLIF) emission.
//
// Mapped netlists are written as .names logic (one table per gate, cube
// rows derived by minimizing each cell function), which every BLIF consumer
// (ABC, SIS) accepts without needing a .genlib. Incompletely specified
// functions are written through pla_io instead — BLIF has no DC-output
// concept beyond external don't-care networks.
#pragma once

#include <iosfwd>
#include <string>

#include "mapper/netlist.hpp"

namespace rdc {

/// Writes the netlist as a flat BLIF model named `model_name`.
void write_blif(const Netlist& netlist, const std::string& model_name,
                std::ostream& out);

/// Convenience: returns the BLIF text.
std::string to_blif(const Netlist& netlist, const std::string& model_name);

}  // namespace rdc
