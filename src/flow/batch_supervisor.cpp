#include "flow/batch_supervisor.hpp"

#include <cctype>
#include <cstring>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "exec/budget.hpp"
#include "exec/journal.hpp"
#include "obs/counters.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "pla/pla_io.hpp"

namespace rdc::flow {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t mix_double(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return fnv1a(&bits, sizeof bits, hash);
}

std::uint64_t mix_u64(std::uint64_t hash, std::uint64_t value) {
  return fnv1a(&value, sizeof value, hash);
}

// --- flat JSON object scanner --------------------------------------------
//
// Splits one compact JSON object into (key, raw value text) pairs without
// interpreting the values — the identity transform that lets a journaled
// row re-enter a report with every number spelling intact. Only flat
// objects with scalar values are produced by the row writer, but the
// scanner tolerates nested values (balanced scan) for robustness.

void skip_ws(std::string_view text, std::size_t& at) {
  while (at < text.size() &&
         std::isspace(static_cast<unsigned char>(text[at])) != 0)
    ++at;
}

/// Consumes a JSON string starting at the opening quote; false on
/// malformed input. `decoded` (when non-null) receives the unescaped text.
bool scan_string(std::string_view text, std::size_t& at,
                 std::string* decoded) {
  if (at >= text.size() || text[at] != '"') return false;
  ++at;
  while (at < text.size()) {
    const char c = text[at];
    if (c == '"') {
      ++at;
      return true;
    }
    if (c == '\\') {
      if (at + 1 >= text.size()) return false;
      const char esc = text[at + 1];
      if (decoded != nullptr) {
        switch (esc) {
          case '"': decoded->push_back('"'); break;
          case '\\': decoded->push_back('\\'); break;
          case '/': decoded->push_back('/'); break;
          case 'b': decoded->push_back('\b'); break;
          case 'f': decoded->push_back('\f'); break;
          case 'n': decoded->push_back('\n'); break;
          case 'r': decoded->push_back('\r'); break;
          case 't': decoded->push_back('\t'); break;
          case 'u': break;  // keys we emit are ASCII; drop the escape
          default: return false;
        }
      }
      at += 2;
      if (esc == 'u') {
        if (at + 4 > text.size()) return false;
        at += 4;
      }
      continue;
    }
    if (decoded != nullptr) decoded->push_back(c);
    ++at;
  }
  return false;
}

/// Consumes one JSON value (any kind), returning its exact source text.
bool scan_value(std::string_view text, std::size_t& at, std::string& raw) {
  const std::size_t begin = at;
  if (at >= text.size()) return false;
  const char first = text[at];
  if (first == '"') {
    if (!scan_string(text, at, nullptr)) return false;
  } else if (first == '{' || first == '[') {
    int depth = 0;
    while (at < text.size()) {
      const char c = text[at];
      if (c == '"') {
        if (!scan_string(text, at, nullptr)) return false;
        continue;
      }
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
      ++at;
      if (depth == 0) break;
    }
    if (depth != 0) return false;
  } else {
    // Number / true / false / null: runs until a structural character.
    while (at < text.size() && text[at] != ',' && text[at] != '}' &&
           text[at] != ']' &&
           std::isspace(static_cast<unsigned char>(text[at])) == 0)
      ++at;
    if (at == begin) return false;
  }
  raw.assign(text.substr(begin, at - begin));
  return true;
}

bool scan_flat_object(
    std::string_view text,
    std::vector<std::pair<std::string, std::string>>& fields) {
  fields.clear();
  std::size_t at = 0;
  skip_ws(text, at);
  if (at >= text.size() || text[at] != '{') return false;
  ++at;
  skip_ws(text, at);
  if (at < text.size() && text[at] == '}') {
    ++at;
    skip_ws(text, at);
    return at == text.size();
  }
  while (true) {
    skip_ws(text, at);
    std::string key;
    if (!scan_string(text, at, &key)) return false;
    skip_ws(text, at);
    if (at >= text.size() || text[at] != ':') return false;
    ++at;
    skip_ws(text, at);
    std::string raw;
    if (!scan_value(text, at, raw)) return false;
    fields.emplace_back(std::move(key), std::move(raw));
    skip_ws(text, at);
    if (at >= text.size()) return false;
    if (text[at] == ',') {
      ++at;
      continue;
    }
    if (text[at] == '}') {
      ++at;
      skip_ws(text, at);
      return at == text.size();
    }
    return false;
  }
}

std::string serialize_row(const obs::Record& row) {
  obs::JsonWriter w(/*compact=*/true);
  row.write(w);
  return w.str();
}

}  // namespace

std::uint64_t flow_options_fingerprint(const FlowOptions& options,
                                       const exec::BudgetLimits& budget) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  hash = mix_u64(hash, static_cast<std::uint64_t>(options.objective));
  hash = mix_double(hash, options.ranking_fraction);
  hash = mix_double(hash, options.lcf_threshold);
  hash = mix_u64(hash, options.lcf_assign_balanced ? 1 : 0);
  hash = mix_u64(hash, options.resyn_recipe ? 1 : 0);
  hash = mix_u64(hash, options.use_extraction ? 1 : 0);
  hash = mix_u64(hash, options.sample_seed);
  hash = mix_double(hash, budget.deadline_ms);
  hash = mix_u64(hash, budget.max_checkpoints);
  hash = mix_u64(hash, budget.max_rss_bytes);
  // Mixed only for non-default models: every fingerprint computed before
  // fault models existed stays byte-for-byte valid (warm serve caches,
  // resumable journals), while distinct models can never alias.
  if (!options.fault_model.is_default())
    hash = mix_u64(hash, options.fault_model.fingerprint());
  return hash;
}

std::uint64_t batch_job_key(const IncompleteSpec& spec,
                            std::string_view pipeline_spec,
                            const BatchOptions& options, std::uint64_t salt) {
  std::ostringstream pla;
  write_pla(spec, pla);
  const std::string pla_text = pla.str();
  std::uint64_t hash = fnv1a(pla_text.data(), pla_text.size(),
                             0xcbf29ce484222325ull);
  const std::string& name = spec.name();
  hash = fnv1a(name.data(), name.size(), hash);
  hash = fnv1a(pipeline_spec.data(), pipeline_spec.size(), hash);
  hash = mix_u64(hash, flow_options_fingerprint(options.flow, options.budget));
  if (salt != 0) hash = mix_u64(hash, salt);
  return hash;
}

exec::Result<SupervisedBatchResult> run_pipeline_batch_supervised(
    const std::string& pipeline_spec,
    const std::vector<IncompleteSpec>& specs,
    const SupervisedBatchOptions& options) {
  auto parsed = parse_pipeline(pipeline_spec);
  if (!parsed.ok()) return parsed.status();
  const Pipeline pipeline = std::move(parsed.value());
  const std::string canonical = pipeline.to_string();

  SupervisedBatchResult result;
  result.report = obs::RunReport(options.batch.suite);
  const bool events = obs::events_enabled();

  // Stable job identities; repeated identical specs get their occurrence
  // index mixed in so the journal can tell them apart.
  std::vector<std::uint64_t> keys(specs.size());
  std::vector<std::string> key_hex(specs.size());
  {
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      std::uint64_t key = batch_job_key(specs[i], canonical, options.batch);
      const std::uint64_t occurrence = seen[key]++;
      if (occurrence > 0)
        key = batch_job_key(specs[i], canonical, options.batch, occurrence);
      keys[i] = key;
      key_hex[i] = exec::job_key_hex(key);
    }
  }

  // Per-spec terminal state, filled from the journal replay or this run.
  struct Slot {
    bool done = false;
    bool ok = false;
    bool from_journal = false;
    std::string row_text;  ///< compact JSON row, exact bytes
  };
  std::vector<Slot> slots(specs.size());

  // --- resume: replay the journal before planning any work ---------------
  exec::JournalWriter journal;
  std::uint64_t next_seq = 1;
  bool replayed = false;
  if (!options.journal_path.empty() && options.resume) {
    auto replay = exec::replay_journal_file(options.journal_path);
    if (replay.ok()) {
      replayed = true;
      next_seq = replay.value().last_seq + 1;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto it = replay.value().jobs.find(key_hex[i]);
        if (it == replay.value().jobs.end()) continue;
        const exec::JournalReplay::Job& job = it->second;
        if (!exec::journal_state_is_terminal(job.state) || job.row.empty())
          continue;  // pending/running (or pre-row journal): re-run
        slots[i].done = true;
        slots[i].from_journal = true;
        slots[i].ok = job.state == "done";
        slots[i].row_text = job.row;
        ++result.resumed;
      }
    }
    // A missing/unreadable journal on --resume is a fresh run by design:
    // the common case is "resume if interrupted, else just run".
  }
  if (!options.journal_path.empty()) {
    const exec::Status opened =
        journal.open(options.journal_path, /*truncate=*/!replayed);
    if (!opened.ok()) return opened;
    journal.set_next_seq(next_seq);
  }
  if (replayed) {
    obs::count(obs::Counter::kSupervisorResumes);
    if (events) {
      obs::Record fields;
      fields.set("journal", options.journal_path);
      fields.set("resumed", result.resumed);
      obs::emit_event("batch.resume", fields);
    }
  }

  // --- plan the remaining work -------------------------------------------
  const bool budgeted = options.batch.budget.deadline_ms > 0.0 ||
                        options.batch.budget.max_checkpoints > 0 ||
                        options.batch.budget.max_rss_bytes > 0;

  std::vector<std::size_t> spec_of_job;
  std::vector<exec::SupervisedJob> jobs;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (slots[i].done) continue;
    const IncompleteSpec& spec = specs[i];
    exec::SupervisedJob job;
    job.key = keys[i];
    job.name = spec.name();
    // Runs in the forked worker: the run_pipeline_batch per-circuit body,
    // plus row construction — the worker owns its row so a frame-returned
    // failure still carries the full circuit-annotated error text.
    job.run = [&pipeline, &spec, &options, budgeted](std::string& payload) {
      Design design(spec, options.batch.flow);
      exec::ExecBudget budget(options.batch.budget);
      std::optional<exec::BudgetScope> scope;
      if (budgeted) scope.emplace(&budget);
      exec::Status status;
      try {
        status = pipeline.run(design);
      } catch (...) {
        status = exec::status_from_current_exception();
      }
      obs::Record row;
      row.set("name", spec.name());
      row.set("status", exec::status_code_name(status.code()));
      row.merge(design.report.metrics);
      if (!status.ok()) {
        status.with_context("circuit " + spec.name());
        row.set("error", status.to_string());
      }
      payload = serialize_row(row);
      return status;
    };
    spec_of_job.push_back(i);
    jobs.push_back(std::move(job));
    if (journal.is_open()) {
      exec::JournalRecord record;
      record.job = key_hex[i];
      record.name = spec.name();
      record.state = "pending";
      journal.append(record);
    }
  }

  // --- execute under the supervisor --------------------------------------
  exec::SupervisorOptions sup;
  sup.limits = options.limits;
  sup.retry = options.retry;
  sup.max_parallel = options.max_parallel;
  sup.max_completions = options.max_completions;
  sup.on_attempt = [&](std::size_t job_index, int attempt) {
    if (!journal.is_open()) return;
    const std::size_t i = spec_of_job[job_index];
    exec::JournalRecord record;
    record.job = key_hex[i];
    record.name = specs[i].name();
    record.state = "running";
    record.attempt = attempt;
    journal.append(record);
  };

  const auto on_done = [&](const exec::JobOutcome& outcome) {
    const std::size_t i = spec_of_job[outcome.index];
    Slot& slot = slots[i];
    // Rebuild the worker's row through the raw-field scanner and stamp the
    // attempt count; a crash/timeout (no payload) synthesizes the error
    // row the worker never got to write.
    obs::Record row;
    std::vector<std::pair<std::string, std::string>> fields;
    if (!outcome.payload.empty() &&
        scan_flat_object(outcome.payload, fields)) {
      for (auto& [key, raw] : fields) row.set_raw(key, std::move(raw));
    } else {
      row.set("name", specs[i].name());
      row.set("status", exec::status_code_name(outcome.status.code()));
      exec::Status annotated = outcome.status;
      annotated.with_context("circuit " + specs[i].name());
      row.set("error", annotated.to_string());
    }
    row.set("attempts", outcome.attempts);
    slot.done = true;
    slot.ok = outcome.status.ok();
    slot.row_text = serialize_row(row);
    ++result.executed;
    if (journal.is_open()) {
      exec::JournalRecord record;
      record.job = key_hex[i];
      record.name = specs[i].name();
      record.state = slot.ok ? "done" : "failed";
      record.attempt = outcome.attempts;
      record.status = exec::status_code_name(outcome.status.code());
      if (!slot.ok) record.error = outcome.status.to_string();
      record.row = slot.row_text;
      journal.append(record);
    }
  };

  const exec::SupervisorResult run = exec::run_supervised(jobs, sup, on_done);
  result.skipped = run.skipped;
  result.interrupted = run.interrupted;

  // --- aggregate the report, input order ---------------------------------
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Slot& slot = slots[i];
    if (!slot.done) continue;  // interrupted before a terminal outcome
    obs::Record& row = result.report.add_row();
    std::vector<std::pair<std::string, std::string>> fields;
    if (scan_flat_object(slot.row_text, fields)) {
      for (auto& [key, raw] : fields) row.set_raw(key, std::move(raw));
      if (!slot.ok) ++result.failures;
    } else {
      row.set("name", specs[i].name());
      row.set("status",
              exec::status_code_name(exec::StatusCode::kInternal));
      row.set("error", "journal row unparsable for job " + key_hex[i]);
      ++result.failures;
    }
  }
  result.report.meta().set("pipeline", canonical);
  result.report.meta().set("circuits", specs.size());
  result.report.meta().set("failures", result.failures);
  if (result.interrupted) result.report.meta().set("interrupted", true);
  return result;
}

}  // namespace rdc::flow
