// End-to-end integration tests on real (Table-1 stand-in) benchmarks:
// the full flow, cross-representation agreement, and SAT sign-off.
#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "benchdata/suite.hpp"
#include "espresso/espresso.hpp"
#include "flow/synthesis_flow.hpp"
#include "io/aiger.hpp"
#include "io/blif.hpp"
#include "io/blif_reader.hpp"
#include "mapper/unmap.hpp"
#include "reliability/complexity.hpp"
#include "reliability/error_rate.hpp"
#include "sat/equivalence.hpp"
#include "sop/factor.hpp"

namespace rdc {
namespace {

// One smallish benchmark exercised through everything; the full suite runs
// in the bench harnesses.
const IncompleteSpec& bench_spec() {
  static const IncompleteSpec spec = make_benchmark("bench");
  return spec;
}

TEST(Integration, SuiteBenchmarkSignature) {
  const IncompleteSpec& spec = bench_spec();
  EXPECT_EQ(spec.num_inputs(), 6u);
  EXPECT_EQ(spec.num_outputs(), 8u);
  EXPECT_NEAR(complexity_factor(spec), 0.540, 0.02);
}

TEST(Integration, FullFlowOrdering) {
  const IncompleteSpec& spec = bench_spec();
  const double conventional =
      run_flow(spec, DcPolicy::kConventional).error_rate;
  const double lcf = run_flow(spec, DcPolicy::kLcfThreshold).error_rate;
  const double complete =
      run_flow(spec, DcPolicy::kAllReliability).error_rate;
  const RateBounds bounds = exact_error_bounds(spec);
  // complete achieves the minimum; lcf sits between it and conventional.
  EXPECT_NEAR(complete, bounds.min, 1e-12);
  EXPECT_LE(complete, lcf + 1e-12);
  EXPECT_LE(lcf, conventional + 1e-12);
}

TEST(Integration, SatSignOffOfMappedNetlist) {
  const FlowResult result =
      run_flow(bench_spec(), DcPolicy::kLcfThreshold);
  // Reference AIG straight from the implementation functions.
  Aig reference(bench_spec().num_inputs());
  for (const auto& f : result.implementation.outputs())
    reference.add_output(reference.build(factor(minimize(f))));
  const Aig mapped = netlist_to_aig(result.netlist);
  EXPECT_TRUE(check_equivalence(reference, mapped).equivalent);
}

TEST(Integration, InterchangeFormatsAgree) {
  const FlowResult result =
      run_flow(bench_spec(), DcPolicy::kConventional);
  const Aig mapped = netlist_to_aig(result.netlist);

  // AIGER round trip.
  const Aig via_aiger = parse_aiger_string(to_aiger(mapped));
  EXPECT_TRUE(check_equivalence(mapped, via_aiger).equivalent);

  // BLIF round trip (through the gate-level writer).
  const BlifModel via_blif =
      parse_blif_string(to_blif(result.netlist, "bench"));
  EXPECT_TRUE(check_equivalence(mapped, via_blif.aig).equivalent);
}

TEST(Integration, ResynRecipeEquivalentOnBenchmark) {
  FlowOptions resyn;
  resyn.resyn_recipe = true;
  const FlowResult direct =
      run_flow(bench_spec(), DcPolicy::kConventional);
  const FlowResult refactored =
      run_flow(bench_spec(), DcPolicy::kConventional, resyn);
  EXPECT_TRUE(check_equivalence(netlist_to_aig(direct.netlist),
                                netlist_to_aig(refactored.netlist))
                  .equivalent);
}

TEST(Integration, ExtractionEquivalentOnBenchmark) {
  FlowOptions extracting;
  extracting.use_extraction = true;
  const FlowResult plain = run_flow(bench_spec(), DcPolicy::kConventional);
  const FlowResult shared =
      run_flow(bench_spec(), DcPolicy::kConventional, extracting);
  EXPECT_TRUE(check_equivalence(netlist_to_aig(plain.netlist),
                                netlist_to_aig(shared.netlist))
                  .equivalent);
  EXPECT_DOUBLE_EQ(plain.error_rate, shared.error_rate);
}

}  // namespace
}  // namespace rdc
