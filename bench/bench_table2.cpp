// Reproduces Table 2 of the paper: complexity-factor-based assignment
// results. For every benchmark, three reliability-driven policies are
// compared against fully conventional assignment:
//   * LC^f-based  (Fig. 7, threshold in the paper's 0.45-0.65 band),
//   * ranking-based at the SAME fraction of DCs assigned (the paper's
//     equal-fraction protocol), and
//   * complete reliability-driven assignment.
// Reported numbers are percent improvements (negative = overhead) in mapped
// area and in exact input-error rate. Benchmarks fan out over the pool
// (RDC_THREADS workers), one circuit per task; rows print in suite order.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "reliability/assignment.hpp"
#include "reliability/complexity.hpp"
#include "reliability/error_rate.hpp"

namespace {

struct Row {
  std::string name;
  unsigned inputs = 0;
  unsigned outputs = 0;
  double cf = 0.0;
  double lc_area = 0.0, lc_er = 0.0;
  double rk_area = 0.0, rk_er = 0.0;
  double cp_area = 0.0, cp_er = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rdc;
  constexpr double kThreshold = 0.55;
  bench::Options options;
  int exit_code = 0;
  if (!bench::parse_args(argc, argv, options, exit_code)) return exit_code;

  bench::heading("Table 2: Complexity-factor-based assignment results");
  std::printf("%-8s %5s | %6s | %7s %7s | %7s %7s | %7s %7s\n", "Name",
              "i/o", "C^f", "LCarea", "LCer", "RKarea", "RKer", "CParea",
              "CPer");
  std::printf(
      "----------------------------------------------------------------------\n");

  const auto& specs = bench::suite();
  const bench::GuardedRows<Row> rows =
      bench::guarded_rows<Row>(options, specs.size(), [&](std::size_t index) {
        const IncompleteSpec& spec = specs[index];
        const FlowResult conventional =
            run_flow(spec, DcPolicy::kConventional);

        // LC^f-based.
        FlowOptions lcf_options;
        lcf_options.lcf_threshold = kThreshold;
        const FlowResult lcf =
            run_flow(spec, DcPolicy::kLcfThreshold, lcf_options);

        // Ranking-based at the same per-output fraction as the LC^f pass.
        // run_flow sees the pre-assigned spec, so its error_rate field
        // would be measured against the enlarged care set; recompute
        // against the original specification.
        IncompleteSpec ranked = spec;
        for (unsigned o = 0; o < spec.num_outputs(); ++o) {
          IncompleteSpec probe = spec;
          const AssignmentResult r = lcf_assign(probe.output(o), kThreshold);
          ranking_assign_count(ranked.output(o), r.assigned);
        }
        FlowResult ranking = run_flow(ranked, DcPolicy::kConventional);
        ranking.error_rate = exact_error_rate(ranking.implementation, spec);

        // Complete reliability-driven assignment.
        const FlowResult complete = run_flow(spec, DcPolicy::kAllReliability);

        const auto area_impr = [&](const FlowResult& r) {
          return bench::improvement_percent(conventional.stats.area,
                                            r.stats.area);
        };
        const auto er_impr = [&](const FlowResult& r) {
          return bench::improvement_percent(conventional.error_rate,
                                            r.error_rate);
        };
        return Row{spec.name(),      spec.num_inputs(),
                   spec.num_outputs(), complexity_factor(spec),
                   area_impr(lcf),   er_impr(lcf),
                   area_impr(ranking), er_impr(ranking),
                   area_impr(complete), er_impr(complete)};
      });

  for (std::size_t i = 0; i < rows.rows.size(); ++i) {
    if (!rows.ok(i)) {
      bench::print_error_row(specs[i].name(), rows.statuses[i]);
      continue;
    }
    const Row& row = rows.rows[i];
    std::printf(
        "%-8s %2u/%-2u | %6.3f | %7.1f %7.1f | %7.1f %7.1f | %7.1f %7.1f\n",
        row.name.c_str(), row.inputs, row.outputs, row.cf, row.lc_area,
        row.lc_er, row.rk_area, row.rk_er, row.cp_area, row.cp_er);
  }
  bench::note(
      "\nColumns: percent improvement over conventional assignment\n"
      "(negative = overhead). LC = LC^f-based (threshold 0.55), RK =\n"
      "ranking-based at the equal fraction, CP = complete reliability\n"
      "assignment. Expected shape (paper): LC^f-based achieves reliability\n"
      "gains with the smallest area penalty; complete assignment maximizes\n"
      "reliability at large area overheads.");

  obs::RunReport report("table2");
  report.meta().set("lcf_threshold", kThreshold);
  for (std::size_t i = 0; i < rows.rows.size(); ++i) {
    if (!rows.ok(i)) {
      bench::add_error_row(report, specs[i].name(), rows.statuses[i]);
      continue;
    }
    const Row& row = rows.rows[i];
    obs::Record& r = report.add_row();
    r.set("name", row.name);
    r.set("status", "OK");
    r.set("inputs", row.inputs);
    r.set("outputs", row.outputs);
    r.set("cf", row.cf);
    r.set("lcf_area_improvement", row.lc_area);
    r.set("lcf_error_improvement", row.lc_er);
    r.set("ranking_area_improvement", row.rk_area);
    r.set("ranking_error_improvement", row.rk_er);
    r.set("complete_area_improvement", row.cp_area);
    r.set("complete_error_improvement", row.cp_er);
  }
  return bench::finish(options, report);
}
