#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "exec/fault.hpp"

namespace rdc::sat {

unsigned Solver::new_var() {
  const unsigned var = num_vars();
  assign_.push_back(Value::kUnassigned);
  model_.push_back(false);
  saved_phase_.push_back(false);
  reason_.push_back(-1);
  level_.push_back(0);
  activity_.push_back(0.0);
  watches_.emplace_back();
  watches_.emplace_back();
  return var;
}

bool Solver::add_clause(Clause clause) {
  if (unsat_) return false;

  // Normalize: drop duplicate/false literals at level 0, detect tautology.
  std::sort(clause.begin(), clause.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  Clause normalized;
  for (std::size_t i = 0; i < clause.size(); ++i) {
    const Lit l = clause[i];
    if (i + 1 < clause.size() && clause[i + 1] == ~l) return true;  // taut.
    if (!normalized.empty() && normalized.back() == l) continue;
    if (value_of(l) == Value::kTrue && level_[l.var()] == 0) return true;
    if (value_of(l) == Value::kFalse && level_[l.var()] == 0) continue;
    normalized.push_back(l);
  }

  if (normalized.empty()) {
    unsat_ = true;
    return false;
  }
  if (normalized.size() == 1) {
    if (value_of(normalized[0]) == Value::kFalse) {
      unsat_ = true;
      return false;
    }
    if (value_of(normalized[0]) == Value::kUnassigned) {
      enqueue(normalized[0], -1);
      if (propagate() >= 0) {
        unsat_ = true;
        return false;
      }
    }
    return true;
  }
  clauses_.push_back(std::move(normalized));
  attach_clause(static_cast<std::uint32_t>(clauses_.size() - 1));
  return true;
}

void Solver::attach_clause(std::uint32_t index) {
  const Clause& c = clauses_[index];
  watches_[(~c[0]).code()].push_back({index});
  watches_[(~c[1]).code()].push_back({index});
}

void Solver::enqueue(Lit l, std::int32_t reason) {
  assert(value_of(l) == Value::kUnassigned);
  assign_[l.var()] = l.negative() ? Value::kFalse : Value::kTrue;
  reason_[l.var()] = reason;
  level_[l.var()] = static_cast<unsigned>(trail_limits_.size());
  trail_.push_back(l);
}

std::int32_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    // Budget poll every ~8192 trail steps: cheap enough to disappear in the
    // propagation cost, frequent enough to observe a deadline promptly.
    if (active_budget_ != nullptr && (++budget_steps_ & 8191u) == 0u &&
        !active_budget_->check().ok()) {
      budget_tripped_ = true;
      return -1;  // solve() notices budget_tripped_ before trusting this
    }
    const Lit p = trail_[propagate_head_++];
    // Clauses watching ~p must find a new watch or propagate/conflict.
    std::vector<Watch>& watch_list = watches_[p.code()];
    std::size_t kept = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const std::uint32_t ci = watch_list[i].clause;
      Clause& c = clauses_[ci];
      // Ensure the falsified literal sits at position 1.
      if (c[0] == ~p) std::swap(c[0], c[1]);
      assert(c[1] == ~p);
      if (value_of(c[0]) == Value::kTrue) {
        watch_list[kept++] = watch_list[i];  // clause satisfied; keep watch
        continue;
      }
      // Look for a non-false replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (value_of(c[k]) != Value::kFalse) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).code()].push_back({ci});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      if (value_of(c[0]) == Value::kFalse) {
        // Conflict: restore the remaining watches and report.
        for (std::size_t k = i; k < watch_list.size(); ++k)
          watch_list[kept++] = watch_list[k];
        watch_list.resize(kept);
        return static_cast<std::int32_t>(ci);
      }
      watch_list[kept++] = watch_list[i];
      enqueue(c[0], static_cast<std::int32_t>(ci));
    }
    watch_list.resize(kept);
  }
  return -1;
}

void Solver::bump(unsigned var) {
  activity_[var] += activity_increment_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    activity_increment_ *= 1e-100;
  }
}

void Solver::decay() { activity_increment_ /= 0.95; }

void Solver::analyze(std::int32_t conflict, Clause& learnt,
                     unsigned& backtrack) {
  learnt.clear();
  learnt.push_back(Lit());  // slot for the asserting literal
  const unsigned current_level = static_cast<unsigned>(trail_limits_.size());

  std::vector<bool> seen(num_vars(), false);
  unsigned counter = 0;
  std::size_t trail_index = trail_.size();
  std::int32_t reason = conflict;
  Lit p;
  bool first = true;

  do {
    assert(reason >= 0);
    const Clause& c = clauses_[static_cast<std::size_t>(reason)];
    for (std::size_t i = first ? 0 : 1; i < c.size(); ++i) {
      const Lit q = c[i];
      if (seen[q.var()] || level_[q.var()] == 0) continue;
      seen[q.var()] = true;
      bump(q.var());
      if (level_[q.var()] == current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk back to the next marked literal on the trail.
    while (!seen[trail_[trail_index - 1].var()]) --trail_index;
    p = trail_[--trail_index];
    seen[p.var()] = false;
    reason = reason_[p.var()];
    --counter;
    first = false;
  } while (counter > 0);
  learnt[0] = ~p;

  // Backtrack level: highest level among the other literals.
  backtrack = 0;
  std::size_t max_index = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (level_[learnt[i].var()] > backtrack) {
      backtrack = level_[learnt[i].var()];
      max_index = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_index]);
}

void Solver::backtrack_to(unsigned level) {
  if (trail_limits_.size() <= level) return;
  const unsigned limit = trail_limits_[level];
  for (std::size_t i = trail_.size(); i > limit; --i) {
    const Lit l = trail_[i - 1];
    saved_phase_[l.var()] = !l.negative();
    assign_[l.var()] = Value::kUnassigned;
    reason_[l.var()] = -1;
  }
  trail_.resize(limit);
  trail_limits_.resize(level);
  propagate_head_ = trail_.size();
}

unsigned Solver::pick_branch_var() {
  unsigned best = num_vars();
  double best_activity = -1.0;
  for (unsigned v = 0; v < num_vars(); ++v) {
    if (assign_[v] != Value::kUnassigned) continue;
    if (activity_[v] > best_activity) {
      best_activity = activity_[v];
      best = v;
    }
  }
  return best;
}

SolveResult Solver::solve() {
  exec::fault_point("sat");
  last_status_ = exec::Status();
  if (unsat_) return SolveResult::kUnsat;

  active_budget_ = budget_ != nullptr ? budget_ : exec::current_budget();
  budget_tripped_ = false;
  // Returns kUnknown with the (sticky) trip code, leaving the solver at
  // level 0 so callers can relax the budget and retry.
  const auto give_up = [&] {
    exec::Status status = active_budget_->check();
    status.with_context("sat");
    last_status_ = std::move(status);
    backtrack_to(0);
    active_budget_ = nullptr;
    return SolveResult::kUnknown;
  };
  if (active_budget_ != nullptr && !active_budget_->check_now().ok())
    return give_up();

  backtrack_to(0);
  if (propagate() >= 0 && !budget_tripped_) {
    unsat_ = true;
    active_budget_ = nullptr;
    return SolveResult::kUnsat;
  }
  if (budget_tripped_) return give_up();

  std::uint64_t restart_limit = 100;
  std::uint64_t conflicts_since_restart = 0;

  while (true) {
    const std::int32_t conflict = propagate();
    if (budget_tripped_) return give_up();
    if (conflict >= 0) {
      ++conflicts_;
      ++conflicts_since_restart;
      if (trail_limits_.empty()) {
        unsat_ = true;
        active_budget_ = nullptr;
        return SolveResult::kUnsat;
      }
      Clause learnt;
      unsigned backtrack = 0;
      analyze(conflict, learnt, backtrack);
      backtrack_to(backtrack);
      if (learnt.size() == 1) {
        backtrack_to(0);
        if (value_of(learnt[0]) == Value::kFalse) {
          unsat_ = true;
          active_budget_ = nullptr;
          return SolveResult::kUnsat;
        }
        if (value_of(learnt[0]) == Value::kUnassigned)
          enqueue(learnt[0], -1);
      } else {
        clauses_.push_back(learnt);
        const auto index = static_cast<std::uint32_t>(clauses_.size() - 1);
        attach_clause(index);
        enqueue(learnt[0], static_cast<std::int32_t>(index));
      }
      decay();
      if (conflicts_since_restart >= restart_limit) {
        conflicts_since_restart = 0;
        restart_limit = restart_limit + restart_limit / 2;
        backtrack_to(0);
      }
      continue;
    }

    const unsigned var = pick_branch_var();
    if (var == num_vars()) {
      for (unsigned v = 0; v < num_vars(); ++v)
        model_[v] = assign_[v] == Value::kTrue;
      backtrack_to(0);
      active_budget_ = nullptr;
      return SolveResult::kSat;
    }
    ++decisions_;
    trail_limits_.push_back(static_cast<unsigned>(trail_.size()));
    enqueue(Lit(var, !saved_phase_[var]), -1);
  }
}

}  // namespace rdc::sat
