// Additional coverage: BDD operation corners, espresso expansion
// internals, flow option combinations, and small numeric corners.
#include <gtest/gtest.h>

#include <bit>

#include "bdd/bdd.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "espresso/expand.hpp"
#include "flow/synthesis_flow.hpp"
#include "reliability/sampling.hpp"

namespace rdc {
namespace {

TEST(BddCoverage, XorChainSatCount) {
  BddManager mgr(6);
  BddEdge f = mgr.zero();
  for (unsigned v = 0; v < 6; ++v) f = mgr.bdd_xor(f, mgr.var(v));
  // Parity: exactly half the assignments satisfy.
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 32.0);
  // With complement edges, parity needs one node per level + terminal.
  EXPECT_EQ(mgr.node_count(f), 7u);
}

TEST(BddCoverage, RestrictIsMemoizedConsistently) {
  BddManager mgr(4);
  const BddEdge f = mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.var(2)),
                               mgr.bdd_and(mgr.var(1), mgr.var(3)));
  const BddEdge once = mgr.restrict_var(f, 2, true);
  const BddEdge twice = mgr.restrict_var(f, 2, true);
  EXPECT_EQ(once, twice);
  // Restricting an absent variable is the identity.
  const BddEdge g = mgr.bdd_and(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.restrict_var(g, 3, false), g);
}

TEST(BddCoverage, EvaluateComplementedEdges) {
  BddManager mgr(3);
  const BddEdge f = mgr.bdd_and(mgr.var(0), !mgr.var(2));
  for (std::uint32_t m = 0; m < 8; ++m) {
    EXPECT_EQ(mgr.evaluate(f, m), ((m & 1) != 0) && ((m & 4) == 0));
    EXPECT_EQ(mgr.evaluate(!f, m), !mgr.evaluate(f, m));
  }
}

TEST(ExpandCoverage, ExpandCubeStopsAtPrime) {
  // off = {x0=0, x1=0}: the cube 11 can raise nothing.
  Cover off(2);
  off.add(Cube::parse("0-"));
  off.add(Cube::parse("-0"));
  const Cube prime = expand_cube(Cube::parse("11"), off, Cover(2));
  EXPECT_EQ(prime.to_string(2), "11");
}

TEST(ExpandCoverage, ExpandPrefersCoveringPeers) {
  // Expanding 000 against an empty off-set: any order reaches the full
  // cube; peers bias the first raise but the result is the same.
  Cover peers(3);
  peers.add(Cube::parse("100"));
  const Cube prime = expand_cube(Cube::parse("000"), Cover(3), peers);
  EXPECT_EQ(prime.literal_count(3), 0u);
}

TEST(FlowCoverage, LcfBalancedOptionChangesAssignment) {
  Rng rng(1009);
  IncompleteSpec spec("opt", 6, 2);
  for (auto& f : spec.outputs())
    for (std::uint32_t m = 0; m < f.size(); ++m)
      f.set_phase(m, static_cast<Phase>(rng.below(3)));
  FlowOptions skip;
  FlowOptions literal;
  literal.lcf_assign_balanced = true;
  const FlowResult a = run_flow(spec, DcPolicy::kLcfThreshold, skip);
  const FlowResult b = run_flow(spec, DcPolicy::kLcfThreshold, literal);
  // The literal mode assigns at least as many DCs.
  EXPECT_GE(b.assignment.assigned, a.assignment.assigned);
}

TEST(FlowCoverage, CombinedOptionsStillCorrect) {
  Rng rng(1013);
  IncompleteSpec spec("combo", 5, 2);
  for (auto& f : spec.outputs())
    for (std::uint32_t m = 0; m < f.size(); ++m)
      f.set_phase(m, static_cast<Phase>(rng.below(3)));
  FlowOptions options;
  options.objective = OptimizeFor::kDelay;
  options.resyn_recipe = true;
  options.use_extraction = true;
  const FlowResult result = run_flow(spec, DcPolicy::kRankingFraction,
                                     options);
  for (unsigned o = 0; o < spec.num_outputs(); ++o) {
    ASSERT_EQ(result.netlist.output_table(o), result.implementation.output(o));
    for (std::uint32_t m = 0; m < spec.output(o).size(); ++m)
      if (spec.output(o).is_care(m))
        ASSERT_EQ(result.implementation.output(o).is_on(m),
                  spec.output(o).is_on(m));
  }
}

TEST(SamplingCoverage, FullWidthFlip) {
  // k = n: exactly one event per source (all bits flipped).
  TernaryTruthTable f(3);
  for (std::uint32_t m = 0; m < 8; ++m)
    if (std::popcount(m) % 2) f.set_phase(m, Phase::kOne);
  // Flipping all 3 bits of a parity function always flips the output.
  EXPECT_DOUBLE_EQ(exact_error_rate_kbit(f, f, 3), 1.0);
}

TEST(StatsCoverage, SummarizeSingleton) {
  const double v[] = {4.2};
  const Summary s = summarize({v, 1});
  EXPECT_DOUBLE_EQ(s.min, 4.2);
  EXPECT_DOUBLE_EQ(s.max, 4.2);
  EXPECT_DOUBLE_EQ(s.mean, 4.2);
}

}  // namespace
}  // namespace rdc
