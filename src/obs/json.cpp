#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace rdc::obs {

// --- writer --------------------------------------------------------------

std::string JsonWriter::quoted(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Escape every control character: C0 as RFC 8259 requires, plus
        // DEL — raw control bytes in span/thread names broke downstream
        // Chrome-trace consumers (fuzz-derived corpus case).
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::prepare_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& level = stack_.back();
  if (level.has_element) out_.push_back(',');
  const bool had_element = level.has_element;
  level.has_element = true;
  if (compact_) {
    if (had_element) out_.push_back(' ');
    return;
  }
  out_.push_back('\n');
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::open(char bracket) {
  prepare_for_value();
  out_.push_back(bracket);
  stack_.push_back({bracket == '{', false});
}

void JsonWriter::close(char bracket) {
  const bool had_elements = !stack_.empty() && stack_.back().has_element;
  stack_.pop_back();
  if (had_elements && !compact_) {
    out_.push_back('\n');
    out_.append(2 * stack_.size(), ' ');
  }
  out_.push_back(bracket);
}

JsonWriter& JsonWriter::begin_object() {
  open('{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  prepare_for_value();
  out_ += quoted(name);
  out_ += ": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prepare_for_value();
  out_ += quoted(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prepare_for_value();
  char buf[32];
  // Shortest round-trip representation; deterministic for a given double.
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec == std::errc()) {
    out_.append(buf, end);
  } else {
    out_ += "null";  // non-finite values have no JSON spelling
  }
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prepare_for_value();
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, end);
  (void)ec;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_for_value();
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, end);
  (void)ec;
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_for_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  prepare_for_value();
  out_ += json;
  return *this;
}

// --- parser --------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object)
    if (name == k) return &value;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue root;
    if (!parse_value(root)) {
      if (error) *error = message_ + " at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    skip_whitespace();
    if (pos_ != text_.size()) {
      if (error)
        *error = "trailing characters at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return root;
  }

 private:
  bool fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal)
      return fail("invalid literal");
    pos_ += literal.size();
    return true;
  }

  /// Containers recurse through parse_value; without a depth cap a
  /// few-KB document of nothing but '[' overflows the stack (found by the
  /// fuzz harness). 128 is far deeper than any report this code emits.
  static constexpr unsigned kMaxDepth = 128;

  bool parse_value(JsonValue& out) {
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_container(out, &Parser::parse_object);
      case '[': return parse_container(out, &Parser::parse_array);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return consume_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return consume_literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_container(JsonValue& out, bool (Parser::*inner)(JsonValue&)) {
    if (depth_ >= kMaxDepth) return fail("nesting too deep");
    ++depth_;
    const bool ok = (this->*inner)(out);
    --depth_;
    return ok;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_whitespace();
    if (consume('}')) return true;
    for (;;) {
      skip_whitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_whitespace();
    if (consume(']')) return true;
    for (;;) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_whitespace();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (we never emit surrogates).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("invalid value");
    const auto [end, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, out.number);
    if (ec != std::errc() || end != text_.data() + pos_)
      return fail("invalid number");
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
  unsigned depth_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace rdc::obs
