#include "tt/ternary_function.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace rdc {

char phase_char(Phase p) {
  switch (p) {
    case Phase::kZero:
      return '0';
    case Phase::kOne:
      return '1';
    case Phase::kDc:
      return '-';
  }
  return '?';
}

TernaryTruthTable::TernaryTruthTable(unsigned num_inputs)
    : num_inputs_(num_inputs) {
  if (num_inputs > kMaxInputs) {
    throw std::invalid_argument(
        "TernaryTruthTable supports at most 20 inputs; use the BDD "
        "representation for larger functions");
  }
  const std::uint32_t words = (size() + 63) >> 6;
  on_.assign(words, 0);
  dc_.assign(words, 0);
}

void TernaryTruthTable::set_phase(std::uint32_t minterm, Phase p) {
  assert(minterm < size());
  assign(on_, minterm, p == Phase::kOne);
  assign(dc_, minterm, p == Phase::kDc);
}

std::uint32_t TernaryTruthTable::popcount(const Words& w) const {
  std::uint64_t total = 0;
  for (std::uint64_t word : w) total += std::popcount(word);
  // Functions with n < 6 still use one 64-bit word; unused high bits are
  // kept zero by set_phase, so no masking is required here.
  return static_cast<std::uint32_t>(total);
}

std::vector<std::uint32_t> TernaryTruthTable::dc_minterms() const {
  std::vector<std::uint32_t> result;
  result.reserve(dc_count());
  for (std::uint32_t w = 0; w < dc_.size(); ++w) {
    std::uint64_t bits = dc_[w];
    while (bits != 0) {
      const unsigned tz = static_cast<unsigned>(std::countr_zero(bits));
      result.push_back((w << 6) | tz);
      bits &= bits - 1;
    }
  }
  return result;
}

unsigned TernaryTruthTable::on_neighbors(std::uint32_t m) const {
  unsigned count = 0;
  for (unsigned j = 0; j < num_inputs_; ++j)
    count += get(on_, flip_bit(m, j)) ? 1u : 0u;
  return count;
}

unsigned TernaryTruthTable::dc_neighbors(std::uint32_t m) const {
  unsigned count = 0;
  for (unsigned j = 0; j < num_inputs_; ++j)
    count += get(dc_, flip_bit(m, j)) ? 1u : 0u;
  return count;
}

unsigned TernaryTruthTable::off_neighbors(std::uint32_t m) const {
  return num_inputs_ - on_neighbors(m) - dc_neighbors(m);
}

TernaryTruthTable TernaryTruthTable::with_all_dc_assigned(Phase p) const {
  assert(p != Phase::kDc);
  TernaryTruthTable result = *this;
  if (p == Phase::kOne) {
    for (std::uint32_t w = 0; w < result.on_.size(); ++w)
      result.on_[w] |= result.dc_[w];
  }
  for (auto& word : result.dc_) word = 0;
  return result;
}

std::string TernaryTruthTable::to_string() const {
  std::string s;
  s.reserve(size());
  for (std::uint32_t m = 0; m < size(); ++m) s.push_back(phase_char(phase(m)));
  return s;
}

}  // namespace rdc
