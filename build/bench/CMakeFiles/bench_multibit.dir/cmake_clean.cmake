file(REMOVE_RECURSE
  "CMakeFiles/bench_multibit.dir/bench_multibit.cpp.o"
  "CMakeFiles/bench_multibit.dir/bench_multibit.cpp.o.d"
  "bench_multibit"
  "bench_multibit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
