#include "tt/ternary_function.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace rdc {

char phase_char(Phase p) {
  switch (p) {
    case Phase::kZero:
      return '0';
    case Phase::kOne:
      return '1';
    case Phase::kDc:
      return '-';
  }
  return '?';
}

TernaryTruthTable::TernaryTruthTable(unsigned num_inputs)
    : num_inputs_(num_inputs) {
  if (num_inputs > kMaxInputs) {
    throw std::invalid_argument(
        "TernaryTruthTable supports at most 20 inputs; use the BDD "
        "representation for larger functions");
  }
  on_ = BitVec(size());
  dc_ = BitVec(size());
}

void TernaryTruthTable::set_phase(std::uint32_t minterm, Phase p) {
  assert(minterm < size());
  on_.set(minterm, p == Phase::kOne);
  dc_.set(minterm, p == Phase::kDc);
}

std::vector<std::uint32_t> TernaryTruthTable::dc_minterms() const {
  std::vector<std::uint32_t> result;
  result.reserve(dc_count());
  dc_.for_each_set([&](std::uint64_t m) {
    result.push_back(static_cast<std::uint32_t>(m));
  });
  return result;
}

unsigned TernaryTruthTable::on_neighbors(std::uint32_t m) const {
  unsigned count = 0;
  for (unsigned j = 0; j < num_inputs_; ++j)
    count += on_.get(flip_bit(m, j)) ? 1u : 0u;
  return count;
}

unsigned TernaryTruthTable::dc_neighbors(std::uint32_t m) const {
  unsigned count = 0;
  for (unsigned j = 0; j < num_inputs_; ++j)
    count += dc_.get(flip_bit(m, j)) ? 1u : 0u;
  return count;
}

unsigned TernaryTruthTable::off_neighbors(std::uint32_t m) const {
  return num_inputs_ - on_neighbors(m) - dc_neighbors(m);
}

TernaryTruthTable TernaryTruthTable::with_all_dc_assigned(Phase p) const {
  assert(p != Phase::kDc);
  TernaryTruthTable result = *this;
  if (p == Phase::kOne) result.on_ |= result.dc_;
  result.dc_.clear();
  return result;
}

std::string TernaryTruthTable::to_string() const {
  std::string s;
  s.reserve(size());
  for (std::uint32_t m = 0; m < size(); ++m) s.push_back(phase_char(phase(m)));
  return s;
}

}  // namespace rdc
