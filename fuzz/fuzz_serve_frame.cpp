// Fuzz target for the rdcsynd wire-protocol decoder (serve/protocol.hpp).
// The daemon feeds attacker-controlled socket bytes straight into
// FrameDecoder, so the whole decode path must be total: any byte
// sequence yields frames, kNeedMore, or a typed Status — never a throw,
// crash, hang, or overread. Decoded frames are additionally pushed
// through the typed body decoders, and successful request/report decodes
// are re-encoded and re-decoded to pin the round trip. A second decoder
// consumes the same input one byte at a time to exercise the incremental
// buffering paths. Regression corpus: fuzz/corpus/serve_frame/.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace {

using namespace rdc::serve;

void check_frame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kRequest: {
      JobRequest request;
      if (decode_request(frame.body, request).ok()) {
        Frame again;
        FrameDecoder decoder;
        decoder.feed(encode_request(request));
        if (decoder.next(again) != FrameDecoder::Result::kFrame)
          std::abort();
        JobRequest round;
        if (!decode_request(again.body, round).ok() ||
            round.spec_pla != request.spec_pla ||
            round.pipeline != request.pipeline ||
            round.deadline_ms != request.deadline_ms ||
            round.no_cache != request.no_cache)
          std::abort();
      }
      break;
    }
    case FrameType::kReportReply: {
      ReportReply reply;
      if (decode_report_reply(frame.body, reply).ok()) {
        Frame again;
        FrameDecoder decoder;
        decoder.feed(encode_report_reply(reply));
        if (decoder.next(again) != FrameDecoder::Result::kFrame)
          std::abort();
        ReportReply round;
        if (!decode_report_reply(again.body, round).ok() ||
            round.cache_hit != reply.cache_hit ||
            round.report_json != reply.report_json)
          std::abort();
      }
      break;
    }
    case FrameType::kErrorReply: {
      rdc::exec::Status status;
      (void)decode_error_reply(frame.body, status);
      break;
    }
    case FrameType::kPing:
    case FrameType::kPong:
      break;
  }
}

/// Drains every complete frame; returns the number seen before the
/// decoder reports kError or kNeedMore.
std::size_t drain(FrameDecoder& decoder) {
  std::size_t frames = 0;
  Frame frame;
  while (decoder.next(frame) == FrameDecoder::Result::kFrame) {
    check_frame(frame);
    ++frames;
  }
  return frames;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Small body cap keeps the fuzzer fast and exercises the
  // kResourceExhausted oversize path often.
  constexpr std::size_t kCap = 1 << 16;

  FrameDecoder bulk(kCap);
  bulk.feed(reinterpret_cast<const char*>(data), size);
  const std::size_t bulk_frames = drain(bulk);
  const bool bulk_errored = !bulk.error().ok();

  // Byte-at-a-time feeding must agree with bulk feeding exactly.
  FrameDecoder incremental(kCap);
  std::size_t incremental_frames = 0;
  for (std::size_t i = 0; i < size; ++i) {
    incremental.feed(reinterpret_cast<const char*>(data) + i, 1);
    Frame frame;
    while (incremental.next(frame) == FrameDecoder::Result::kFrame)
      ++incremental_frames;
    if (!incremental.error().ok()) break;
  }
  // Feeding granularity must not change the outcome: same frame count,
  // same error state.
  const bool incremental_errored = !incremental.error().ok();
  if (incremental_frames != bulk_frames ||
      incremental_errored != bulk_errored)
    std::abort();
  return 0;
}
