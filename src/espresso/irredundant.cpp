#include "espresso/irredundant.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "espresso/unate.hpp"
#include "exec/budget.hpp"

namespace rdc {

Cover irredundant(const Cover& on, const Cover& dc) {
  const unsigned n = on.num_inputs();
  std::vector<bool> alive(on.size(), true);

  // Try to drop cubes in order of increasing size (small cubes are most
  // likely to be absorbed by their larger peers); a cube is droppable iff
  // the still-alive remainder plus the DC cover contains it.
  std::vector<std::size_t> order(on.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return on.cube(a).literal_count(n) >
                            on.cube(b).literal_count(n);
                   });

  for (std::size_t candidate : order) {
    exec::checkpoint();  // per-cube budget poll (DESIGN.md §10)
    Cover rest(n);
    for (std::size_t i = 0; i < on.size(); ++i)
      if (alive[i] && i != candidate) rest.add(on.cube(i));
    for (const Cube& c : dc.cubes()) rest.add(c);
    if (cover_contains_cube(rest, on.cube(candidate)))
      alive[candidate] = false;
  }

  Cover result(n);
  for (std::size_t i = 0; i < on.size(); ++i)
    if (alive[i]) result.add(on.cube(i));
  return result;
}

}  // namespace rdc
