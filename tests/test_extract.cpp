// Tests for multi-output common-kernel extraction.
#include <gtest/gtest.h>

#include "aig/simulate.hpp"
#include "common/rng.hpp"
#include "espresso/espresso.hpp"
#include "sop/extract.hpp"
#include "sop/factor.hpp"

namespace rdc {
namespace {

Cover cover_of(unsigned n, std::initializer_list<const char*> cubes) {
  Cover cover(n);
  for (const char* c : cubes) cover.add(Cube::parse(c));
  return cover;
}

TEST(Extract, SharesKernelAcrossOutputs) {
  // out0 = a c + a d, out1 = b c + b d: kernel (c + d) shared.
  const std::vector<Cover> covers{
      cover_of(4, {"1-1-", "1--1"}),
      cover_of(4, {"-11-", "-1-1"}),
  };
  Aig shared(4);
  const ExtractionResult result = build_with_extraction(shared, covers);
  EXPECT_GE(result.kernels_extracted, 1u);

  Aig independent(4);
  for (const Cover& c : covers) independent.add_output(independent.build(factor(c)));
  for (const std::uint32_t out : result.outputs) shared.add_output(out);

  // Identical functions...
  const AigSimulator sa(shared);
  const AigSimulator sb(independent);
  for (unsigned o = 0; o < 2; ++o)
    EXPECT_EQ(sa.output_table(o), sb.output_table(o));
  // ...with no more AND nodes than the unshared build.
  EXPECT_LE(shared.num_ands(), independent.num_ands());
}

TEST(Extract, SingleOutputIsUnchangedSemantically) {
  const std::vector<Cover> covers{cover_of(3, {"11-", "1-1", "-11"})};
  Aig aig(3);
  const ExtractionResult result = build_with_extraction(aig, covers);
  aig.add_output(result.outputs[0]);
  const AigSimulator sim(aig);
  for (std::uint32_t m = 0; m < 8; ++m)
    EXPECT_EQ(sim.literal_value(result.outputs[0], m),
              covers[0].covers_minterm(m));
}

TEST(Extract, EmptyAndConstantCovers) {
  std::vector<Cover> covers{Cover(3), Cover(3)};
  covers[1].add(Cube::full(3));
  Aig aig(3);
  const ExtractionResult result = build_with_extraction(aig, covers);
  EXPECT_EQ(result.outputs[0], aiglit::kFalse);
  EXPECT_EQ(result.outputs[1], aiglit::kTrue);
  EXPECT_EQ(result.kernels_extracted, 0u);
}

TEST(Extract, RandomMultiOutputEquivalence) {
  Rng rng(901);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Cover> covers;
    const unsigned n = 5;
    for (int o = 0; o < 3; ++o) {
      TernaryTruthTable f(n);
      for (std::uint32_t m = 0; m < f.size(); ++m)
        f.set_phase(m, rng.flip(0.4) ? Phase::kOne : Phase::kZero);
      covers.push_back(minimize(f));
    }
    Aig aig(n);
    const ExtractionResult result = build_with_extraction(aig, covers);
    for (const std::uint32_t out : result.outputs) aig.add_output(out);
    const AigSimulator sim(aig);
    for (unsigned o = 0; o < 3; ++o)
      for (std::uint32_t m = 0; m < 32; ++m)
        ASSERT_EQ(sim.literal_value(result.outputs[o], m),
                  covers[o].covers_minterm(m))
            << "trial " << trial << " output " << o << " minterm " << m;
  }
}

TEST(Extract, RespectsKernelBudget) {
  const std::vector<Cover> covers{
      cover_of(4, {"1-1-", "1--1"}),
      cover_of(4, {"-11-", "-1-1"}),
  };
  Aig aig(4);
  const ExtractionResult result = build_with_extraction(aig, covers, 0);
  EXPECT_EQ(result.kernels_extracted, 0u);
}

}  // namespace
}  // namespace rdc
