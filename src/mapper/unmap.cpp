#include "mapper/unmap.hpp"

#include <stdexcept>
#include <vector>

namespace rdc {
namespace {

std::uint32_t build_cell(Aig& aig, CellKind kind,
                         const std::vector<std::uint32_t>& in) {
  using aiglit::negate;
  switch (kind) {
    case CellKind::kInv:
      return negate(in[0]);
    case CellKind::kBuf:
      return in[0];
    case CellKind::kAnd2:
      return aig.make_and(in[0], in[1]);
    case CellKind::kNand2:
      return negate(aig.make_and(in[0], in[1]));
    case CellKind::kOr2:
      return aig.make_or(in[0], in[1]);
    case CellKind::kNor2:
      return negate(aig.make_or(in[0], in[1]));
    case CellKind::kAnd3:
      return aig.make_and(aig.make_and(in[0], in[1]), in[2]);
    case CellKind::kNand3:
      return negate(aig.make_and(aig.make_and(in[0], in[1]), in[2]));
    case CellKind::kOr3:
      return aig.make_or(aig.make_or(in[0], in[1]), in[2]);
    case CellKind::kNor3:
      return negate(aig.make_or(aig.make_or(in[0], in[1]), in[2]));
    case CellKind::kAnd4:
      return aig.make_and(aig.make_and(in[0], in[1]),
                          aig.make_and(in[2], in[3]));
    case CellKind::kNand4:
      return negate(aig.make_and(aig.make_and(in[0], in[1]),
                                 aig.make_and(in[2], in[3])));
    case CellKind::kAoi21:
      return negate(aig.make_or(aig.make_and(in[0], in[1]), in[2]));
    case CellKind::kOai21:
      return negate(aig.make_and(aig.make_or(in[0], in[1]), in[2]));
    case CellKind::kAoi22:
      return negate(aig.make_or(aig.make_and(in[0], in[1]),
                                aig.make_and(in[2], in[3])));
    case CellKind::kOai22:
      return negate(aig.make_and(aig.make_or(in[0], in[1]),
                                 aig.make_or(in[2], in[3])));
    case CellKind::kXor2:
      return aig.make_xor(in[0], in[1]);
    case CellKind::kXnor2:
      return negate(aig.make_xor(in[0], in[1]));
    case CellKind::kTie0:
      return aiglit::kFalse;
    case CellKind::kTie1:
      return aiglit::kTrue;
  }
  throw std::logic_error("build_cell: unknown cell kind");
}

}  // namespace

Aig netlist_to_aig(const Netlist& netlist) {
  Aig aig(netlist.num_inputs());
  std::vector<std::uint32_t> net_lit(netlist.num_nets(), aiglit::kFalse);
  for (unsigned i = 0; i < netlist.num_inputs(); ++i)
    net_lit[i] = aig.input_literal(i);
  for (const Gate& g : netlist.gates()) {
    std::vector<std::uint32_t> fanins;
    fanins.reserve(g.fanins.size());
    for (const std::uint32_t f : g.fanins) fanins.push_back(net_lit[f]);
    net_lit[g.output_net] = build_cell(aig, g.kind, fanins);
  }
  for (const std::uint32_t out : netlist.outputs())
    aig.add_output(net_lit[out]);
  return aig;
}

}  // namespace rdc
