#!/usr/bin/env bash
# Local CI: the tier-1 configure/build/ctest line from ROADMAP.md (run
# twice: once on the default SIMD dispatch, once pinned to the scalar
# backend with RDC_SIMD=scalar), followed
# by an ASan+UBSan build of the unit tests to catch memory and UB bugs the
# release build hides (the word-parallel kernels and the thread pool are
# exactly the kind of code sanitizers pay off on), a fuzz-corpus replay of
# the fuzz targets (parsers + journal replayer), a pipeline smoke
# (rdcsyn_cli --pipeline
# with a nondefault spec plus a batch fan-out over the examples/ fixtures,
# reports validated with rdc_json_check), and the §10 fault-injection
# smoke: a
# bench_table1 run over a circuit list containing a malformed BLIF and a
# deadline-busting circuit, plus an RDC_FAULT espresso failure — both must
# complete with error rows, not abort. A telemetry smoke validates the
# RDC_METRICS snapshotter, the RDC_EVENTS lifecycle log, and RDC_PERF
# degradation, and the rdc_perf_diff gate self-checks on the committed
# bench baseline plus a synthetic regression fixture that must fail.
# The §14 crash-safe batch smoke interrupts a chaos-armed rdc_batch run
# mid-flight and asserts the journal-resumed report matches an
# uninterrupted one, that worker segfaults become INTERNAL rows with
# job.crash events, and that SIGTERM produces an orderly shutdown in both
# the driver-owned (exit 4) and unowned-snapshotter (exit 143) paths.
# The §15 serving smoke exercises rdcsynd end to end on a unix socket:
# warm-cache request pair (byte-identical reply, serve.cache.hit counter),
# malformed frames and a slow-loris client answered with Status replies
# rather than crashes, overload shed with RESOURCE_EXHAUSTED, and SIGTERM
# during an in-flight request draining cleanly with exit 0 plus a
# serve.drain event.
#
# Usage: scripts/check.sh [--no-sanitizers]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

run_sanitizers=1
if [[ "${1:-}" == "--no-sanitizers" ]]; then
  run_sanitizers=0
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . -DRDC_ENABLE_FUZZERS=ON
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo
echo "== tier-1 rerun on the scalar SIMD backend =="
# The differential tests force each backend per test, but the whole suite
# must also hold with the dispatch pinned to the portable kernels — the
# configuration every non-x86 target runs.
(cd build && RDC_SIMD=scalar ctest --output-on-failure -j)

echo
echo "== observability smoke: traced --json harness run =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
RDC_TRACE="$smoke_dir/trace.json" \
  ./build/bench/bench_table1 --json "$smoke_dir/report.json" > /dev/null
./build/tools/rdc_json_check "$smoke_dir/report.json" \
  schema suite git_rev date threads compiler rows counters
./build/tools/rdc_json_check "$smoke_dir/trace.json" traceEvents
RDC_TRACE=summary ./build/bench/bench_table1 > /dev/null 2> "$smoke_dir/summary.txt"
grep -q "rdc::obs" "$smoke_dir/summary.txt" || {
  echo "RDC_TRACE=summary produced no summary table" >&2
  exit 1
}

# Replays every corpus file through a fuzz binary; with libFuzzer (clang)
# also runs a short time-boxed fuzzing session per target.
run_fuzzers() {
  local build_dir="$1"
  local target
  for target in pla blif aiger json pipeline_spec journal serve_frame; do
    local bin="$build_dir/fuzz/fuzz_$target"
    local corpus="fuzz/corpus/$target"
    [[ -x "$bin" ]] || { echo "missing fuzz binary $bin" >&2; return 1; }
    if "$bin" -help=1 2>/dev/null | grep -q libFuzzer; then
      # Real libFuzzer: replay the corpus, then fuzz for 30 s.
      "$bin" -runs=0 "$corpus" > /dev/null 2>&1
      "$bin" -max_total_time=30 "$corpus" > /dev/null 2>&1
    else
      "$bin" "$corpus"/* > /dev/null
    fi
  done
}

echo
echo "== fuzz corpus replay (release build) =="
run_fuzzers build

echo
echo "== pipeline smoke: rdcsyn_cli --pipeline / batch =="
# A nondefault spec (extract instead of factor|aig, delay mapping) through
# the single-circuit path, then a batch fan-out over the examples/
# fixtures; both reports must validate structurally.
./build/examples/rdcsyn_cli synth examples/fixtures/builtin.pla \
  --pipeline "assign:lcf(0.6,balanced) | espresso | extract | map:delay | analyze | error_rate" \
  --json "$smoke_dir/pipeline.json" > /dev/null
./build/tools/rdc_json_check "$smoke_dir/pipeline.json" \
  schema phases metrics metrics.error_rate metrics.gates
./build/examples/rdcsyn_cli batch examples/fixtures/*.pla \
  --pipeline "assign:ranking(0.75) | espresso | factor | aig | resyn | map:power | analyze | error_rate" \
  --json "$smoke_dir/batch.json" > /dev/null
./build/tools/rdc_json_check "$smoke_dir/batch.json" \
  schema suite git_rev date threads compiler rows meta.pipeline
# A malformed spec must fail with a position-annotated parse error.
if ./build/examples/rdcsyn_cli synth examples/fixtures/builtin.pla \
     --pipeline "espresso | nosuchpass" > /dev/null 2> "$smoke_dir/parse_err.txt"; then
  echo "pipeline smoke: malformed spec unexpectedly accepted" >&2
  exit 1
fi
grep -q "at offset" "$smoke_dir/parse_err.txt" || {
  echo "pipeline smoke: parse error lacks a byte offset" >&2
  cat "$smoke_dir/parse_err.txt" >&2
  exit 1
}

echo
echo "== §16 cross-model smoke: fault models =="
# One fixture under the default bit-flip model and under stuck-at faults;
# both reports must validate and name the model that ran (rdc_json_check
# rejects unknown metrics.fault_model values for rdc.flow.report.v1).
xmodel_pipe_bitflip="assign:ranking(0.5)@bitflip | espresso | factor | aig | map:power | analyze | error_rate@bitflip"
xmodel_pipe_stuckat="assign:ranking(0.5)@stuckat | espresso | factor | aig | map:power | analyze | error_rate@stuckat"
./build/examples/rdcsyn_cli synth examples/fixtures/builtin.pla \
  --pipeline "$xmodel_pipe_bitflip" \
  --json "$smoke_dir/xmodel_bitflip.json" > /dev/null
./build/tools/rdc_json_check "$smoke_dir/xmodel_bitflip.json" \
  schema metrics.error_rate metrics.fault_model
grep -q '"fault_model": "bitflip"' "$smoke_dir/xmodel_bitflip.json" || {
  echo "cross-model smoke: bitflip report lacks the model label" >&2
  exit 1
}
./build/examples/rdcsyn_cli synth examples/fixtures/builtin.pla \
  --pipeline "$xmodel_pipe_stuckat" \
  --json "$smoke_dir/xmodel_stuckat.json" > /dev/null
./build/tools/rdc_json_check "$smoke_dir/xmodel_stuckat.json" \
  schema metrics.error_rate metrics.fault_model
grep -q '"fault_model": "stuckat"' "$smoke_dir/xmodel_stuckat.json" || {
  echo "cross-model smoke: stuckat report lacks the model label" >&2
  exit 1
}
# Serve-cache keys must differ across models for the same spec bytes —
# the annotation flows into the canonical pipeline string and the key.
key_bitflip=$(./build/examples/rdcsyn_cli cachekey examples/fixtures/builtin.pla \
  --pipeline "$xmodel_pipe_bitflip")
key_stuckat=$(./build/examples/rdcsyn_cli cachekey examples/fixtures/builtin.pla \
  --pipeline "$xmodel_pipe_stuckat")
if [ "$key_bitflip" = "$key_stuckat" ]; then
  echo "cross-model smoke: cache keys alias across fault models" >&2
  exit 1
fi

echo
echo "== §10 fault-isolation smoke =="
# Run A: one healthy circuit, one malformed BLIF, one circuit engineered to
# blow a per-circuit deadline. The harness must finish with one row each:
# OK, PARSE_ERROR, DEADLINE_EXCEEDED.
cat > "$smoke_dir/tiny.pla" <<'EOF'
.i 2
.o 1
11 1
.e
EOF
cat > "$smoke_dir/broken.blif" <<'EOF'
.model broken
.inputs a a
.outputs y
.names a y
1 1
.end
EOF
python3 - "$smoke_dir/slow.pla" <<'EOF'
# 16-input PLA with a dense pseudo-random on/dc structure: ESPRESSO takes
# well over the smoke deadline on it, deterministically.
import sys
path = sys.argv[1]
n = 16
with open(path, "w") as f:
    f.write(f".i {n}\n.o 1\n.type fd\n")
    state = 0x9E3779B97F4A7C15
    for m in range(0, 1 << n, 3):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        bits = format(m, f"0{n}b")
        f.write(bits + (" 1\n" if state & 2 else " -\n"))
    f.write(".e\n")
EOF
cat > "$smoke_dir/circuits.txt" <<EOF
$smoke_dir/tiny.pla
$smoke_dir/broken.blif
$smoke_dir/slow.pla
EOF
./build/bench/bench_table1 --circuits "$smoke_dir/circuits.txt" \
  --deadline-ms 150 --json "$smoke_dir/faults.json" > "$smoke_dir/faults.txt"
for expect in '"status": "OK"' '"status": "PARSE_ERROR"' \
              '"status": "DEADLINE_EXCEEDED"'; do
  grep -qF "$expect" "$smoke_dir/faults.json" || {
    echo "fault smoke: missing $expect in report" >&2
    cat "$smoke_dir/faults.txt" >&2
    exit 1
  }
done

# Run B: deterministic fault injection. Two healthy single-output circuits,
# RDC_FAULT=espresso:2 under one thread: circuit 1 minimizes fine, circuit
# 2's espresso call is the second hit and faults — one OK row, one
# FAULT_INJECTED row, run completes.
cp "$smoke_dir/tiny.pla" "$smoke_dir/tiny2.pla"
cat > "$smoke_dir/circuits2.txt" <<EOF
$smoke_dir/tiny.pla
$smoke_dir/tiny2.pla
EOF
RDC_THREADS=1 RDC_FAULT=espresso:2 \
  ./build/bench/bench_table1 --circuits "$smoke_dir/circuits2.txt" \
  --json "$smoke_dir/faults2.json" > /dev/null
grep -qF '"status": "OK"' "$smoke_dir/faults2.json" || {
  echo "fault smoke B: missing OK row" >&2; exit 1
}
grep -qF '"status": "FAULT_INJECTED"' "$smoke_dir/faults2.json" || {
  echo "fault smoke B: missing FAULT_INJECTED row" >&2; exit 1
}

echo
echo "== telemetry smoke: live metrics + event log + perf spans =="
# One traced pipeline run with every telemetry sink armed: the metrics
# snapshotter must leave a complete final rdc.metrics.v1 document (no torn
# .tmp), the event log must be a valid rdc.events.v1 stream containing the
# pipeline lifecycle, and RDC_PERF=1 must either report hardware counters
# or degrade to wall-time-only — never fail the run.
RDC_PERF=1 \
RDC_METRICS="$smoke_dir/metrics.json:50" \
RDC_EVENTS="$smoke_dir/events.jsonl" \
  ./build/examples/rdcsyn_cli synth examples/fixtures/builtin.pla \
  --json "$smoke_dir/telemetry_flow.json" > /dev/null
# The recognized schema tag makes rdc_json_check enforce the full
# rdc.metrics.v1 key set; the greps pin the process-sampler gauge and a
# work counter (their snake.case names contain dots, so no dotted path).
./build/tools/rdc_json_check "$smoke_dir/metrics.json"
grep -q '"process.rss_bytes"' "$smoke_dir/metrics.json" || {
  echo "telemetry smoke: metrics snapshot lacks process.rss_bytes" >&2
  exit 1
}
grep -q '"espresso.calls"' "$smoke_dir/metrics.json" || {
  echo "telemetry smoke: metrics snapshot lacks espresso.calls counter" >&2
  exit 1
}
if [[ -e "$smoke_dir/metrics.json.tmp" ]]; then
  echo "telemetry smoke: torn metrics snapshot (.tmp left behind)" >&2
  exit 1
fi
./build/tools/rdc_json_check --events "$smoke_dir/events.jsonl"
grep -q '"event": "pass.begin"' "$smoke_dir/events.jsonl" || {
  echo "telemetry smoke: no pass.begin event in the log" >&2
  cat "$smoke_dir/events.jsonl" >&2
  exit 1
}
grep -q '"event": "pipeline.end"' "$smoke_dir/events.jsonl" || {
  echo "telemetry smoke: no pipeline.end event in the log" >&2
  exit 1
}
# Prometheus exposition variant of the snapshotter.
RDC_METRICS="$smoke_dir/metrics.prom" \
  ./build/examples/rdcsyn_cli synth examples/fixtures/builtin.pla > /dev/null
grep -q '# TYPE rdc_process_rss_bytes gauge' "$smoke_dir/metrics.prom" || {
  echo "telemetry smoke: no Prometheus gauge exposition" >&2
  exit 1
}

echo
echo "== §14 crash-safe batch smoke: chaos, retry, journaled resume =="
# Chaos-armed reference run: kill:0.3 injects deterministic worker crashes
# keyed by job identity; --retries 3 absorbs them. Exit 0 or 3 (row
# failures) are both completed batches.
batch_pipeline="assign:ranking(0.5) | espresso | factor | aig | map:power"
chaos_run() { # <journal> <json> [extra args...]
  local journal="$1" json="$2"
  shift 2
  RDC_CHAOS=kill:0.3 ./build/tools/rdc_batch examples/fixtures/*.pla \
    --pipeline "$batch_pipeline" --retries 3 --backoff-ms 1 \
    --journal "$journal" --json "$json" "$@" > /dev/null 2>&1
}
code=0; chaos_run "$smoke_dir/chaos_a.journal" "$smoke_dir/chaos_a.json" \
  || code=$?
[[ "$code" == 0 || "$code" == 3 ]] || {
  echo "chaos smoke: reference run exited $code" >&2; exit 1
}
# Interrupt the same batch after 2 completions (exit 4: resumable), then
# resume from its journal. The chaos decisions replay identically, so the
# stitched report must match the uninterrupted one modulo wall-clock
# values and attempt counts — and the journal must show every job reaching
# exactly one terminal state (none lost, none run twice).
code=0; chaos_run "$smoke_dir/chaos_b.journal" "$smoke_dir/chaos_b1.json" \
  --stop-after 2 || code=$?
[[ "$code" == 4 ]] || {
  echo "chaos smoke: interrupted run exited $code, want 4" >&2; exit 1
}
code=0; chaos_run "$smoke_dir/chaos_b.journal" "$smoke_dir/chaos_b2.json" \
  --resume || code=$?
[[ "$code" == 0 || "$code" == 3 ]] || {
  echo "chaos smoke: resumed run exited $code" >&2; exit 1
}
python3 - "$smoke_dir/chaos_a.json" "$smoke_dir/chaos_b2.json" <<'EOF'
import json, sys
drop = ("attempts", "wall_ms", "total_ms")
rows = []
for path in sys.argv[1:3]:
    with open(path) as f:
        doc = json.load(f)
    rows.append([{k: v for k, v in r.items() if k not in drop}
                 for r in doc["rows"]])
assert rows[0], "chaos smoke compared empty row sets"
assert rows[0] == rows[1], "resumed report rows differ from uninterrupted run"
EOF
./build/tools/rdc_json_check --journal "$smoke_dir/chaos_b.journal"

# A worker segfault must become an INTERNAL row plus a job.crash event
# while the batch completes (exit 3: finished with row failures).
code=0
RDC_CHAOS=segv:1@1 RDC_EVENTS="$smoke_dir/chaos_events.jsonl" \
  ./build/tools/rdc_batch examples/fixtures/*.pla \
  --pipeline "assign:zero | espresso" \
  --json "$smoke_dir/chaos_segv.json" > /dev/null 2>&1 || code=$?
[[ "$code" == 3 ]] || {
  echo "chaos smoke: segv batch exited $code, want 3" >&2; exit 1
}
grep -qF '"status": "INTERNAL"' "$smoke_dir/chaos_segv.json" || {
  echo "chaos smoke: no INTERNAL row for the segfaulting workers" >&2; exit 1
}
grep -qF '"event": "job.crash"' "$smoke_dir/chaos_events.jsonl" || {
  echo "chaos smoke: no job.crash event" >&2; exit 1
}
./build/tools/rdc_json_check --events "$smoke_dir/chaos_events.jsonl"

# Transient crash + retry: every first attempt dies, every retry succeeds.
RDC_CHAOS=kill:1@1 ./build/tools/rdc_batch examples/fixtures/builtin.pla \
  --pipeline "assign:zero | espresso" --retries 2 --backoff-ms 1 \
  --json "$smoke_dir/chaos_retry.json" > /dev/null 2>&1 || {
  echo "chaos smoke: retry did not recover the killed first attempt" >&2
  exit 1
}

echo
echo "== §14 graceful-shutdown smoke: SIGTERM mid-batch =="
# Driver-owned: rdc_batch claims shutdown, kills its hung workers, leaves
# the journal resumable, and exits 4 after a process.shutdown event and a
# final metrics snapshot.
RDC_CHAOS=hang:1 RDC_EVENTS="$smoke_dir/term_events.jsonl" \
RDC_METRICS="$smoke_dir/term_metrics.json:50" \
  ./build/tools/rdc_batch examples/fixtures/*.pla \
  --pipeline "assign:zero | espresso" --journal "$smoke_dir/term.journal" \
  --json "$smoke_dir/term.json" > /dev/null 2>&1 & batch_pid=$!
sleep 1
kill -TERM "$batch_pid"
code=0; wait "$batch_pid" || code=$?
[[ "$code" == 4 ]] || {
  echo "shutdown smoke: rdc_batch exited $code, want 4" >&2; exit 1
}
grep -qF '"event": "process.shutdown"' "$smoke_dir/term_events.jsonl" || {
  echo "shutdown smoke: no process.shutdown event from the driver" >&2
  exit 1
}
./build/tools/rdc_json_check "$smoke_dir/term_metrics.json"

# Unowned: nobody claims the signal, so the metrics snapshotter flushes a
# final snapshot plus the terminating event and re-raises — the process
# dies with the conventional 128+15 status.
printf '%s\n' "$smoke_dir/slow.pla" > "$smoke_dir/slow_list.txt"
RDC_METRICS="$smoke_dir/unowned_metrics.json:50" \
RDC_EVENTS="$smoke_dir/unowned_events.jsonl" \
  ./build/bench/bench_table1 --circuits "$smoke_dir/slow_list.txt" \
  > /dev/null 2>&1 & bench_pid=$!
sleep 1
kill -TERM "$bench_pid"
code=0; wait "$bench_pid" || code=$?
[[ "$code" == 143 ]] || {
  echo "shutdown smoke: unowned run exited $code, want 143" >&2; exit 1
}
grep -qF '"event": "process.shutdown"' "$smoke_dir/unowned_events.jsonl" || {
  echo "shutdown smoke: snapshotter wrote no process.shutdown event" >&2
  exit 1
}
./build/tools/rdc_json_check "$smoke_dir/unowned_metrics.json"

echo
echo "== §15 serving smoke: rdcsynd admission, cache, drain =="
# Daemon 1: single executor, short I/O timeout. A warm-cache request pair
# must return byte-identical reports; malformed frames and a slow-loris
# client must get Status replies while the daemon keeps serving; SIGTERM
# with a request in flight must drain cleanly (exit 0, serve.drain event,
# final metrics snapshot with the cache-hit counter).
serve_sock="$smoke_dir/rdcsynd.sock"
RDC_METRICS="$smoke_dir/serve_metrics.json:50" \
RDC_EVENTS="$smoke_dir/serve_events.jsonl" \
  ./build/tools/rdcsynd --socket "$serve_sock" --threads 1 \
  --io-timeout-ms 400 --drain-ms 1000 \
  2> "$smoke_dir/rdcsynd.log" & serve_pid=$!
./build/tools/rdcsyn_client ping --socket "$serve_sock" --wait-ms 10000 \
  > /dev/null
./build/tools/rdcsyn_client run examples/fixtures/builtin.pla \
  --socket "$serve_sock" --pipeline "assign:zero | espresso" \
  --json "$smoke_dir/serve_cold.json" > /dev/null
# Same request, pipeline spelled without spaces: canonicalization means it
# still hits, and the reply bytes must match the cold run exactly.
./build/tools/rdcsyn_client run examples/fixtures/builtin.pla \
  --socket "$serve_sock" --pipeline "assign:zero|espresso" \
  --json "$smoke_dir/serve_warm.json" > /dev/null
cmp "$smoke_dir/serve_cold.json" "$smoke_dir/serve_warm.json" || {
  echo "serving smoke: warm cache reply differs from the cold run" >&2
  exit 1
}
./build/tools/rdc_json_check "$smoke_dir/serve_cold.json" \
  schema phases metrics
# Malformed frame: the reply must be a framed kInvalidArgument (code 1),
# then a close — never a crash.
python3 - "$serve_sock" <<'EOF'
import socket, struct, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(b"NOT A FRAME AT ALL")
s.settimeout(10)
reply = b""
while True:
    try:
        chunk = s.recv(4096)
    except socket.timeout:
        sys.exit("serving smoke: no reply to a malformed frame")
    if not chunk:
        break
    reply += chunk
assert reply[:4] == b"RDCS" and reply[4] == 1, reply[:16]
assert reply[5] == 3, f"want error-reply frame type 3, got {reply[5]}"
body = reply[10:10 + struct.unpack("<I", reply[6:10])[0]]
assert body[0] == 1, f"want INVALID_ARGUMENT (1), got {body[0]}"
EOF
# Slow-loris: a partial header must be cut on the read deadline with a
# framed kDeadlineExceeded (code 3), not held open forever.
python3 - "$serve_sock" <<'EOF'
import socket, struct, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(b"RDCS")  # valid magic, then stall mid-header
s.settimeout(10)
reply = b""
while True:
    try:
        chunk = s.recv(4096)
    except socket.timeout:
        sys.exit("serving smoke: slow-loris connection was never cut")
    if not chunk:
        break
    reply += chunk
assert reply[:4] == b"RDCS" and reply[5] == 3, reply[:16]
body = reply[10:10 + struct.unpack("<I", reply[6:10])[0]]
assert body[0] == 3, f"want DEADLINE_EXCEEDED (3), got {body[0]}"
EOF
# Still serving after both attacks.
./build/tools/rdcsyn_client ping --socket "$serve_sock" --wait-ms 5000 \
  > /dev/null
# SIGTERM with a long request in flight: the drain lets it finish or
# cancels it at the deadline, and the daemon exits 0 either way.
./build/tools/rdcsyn_client run "$smoke_dir/slow.pla" \
  --socket "$serve_sock" --pipeline "assign:zero | espresso" --retries 1 \
  > /dev/null 2>&1 & slow_client_pid=$!
sleep 0.5
kill -TERM "$serve_pid"
code=0; wait "$serve_pid" || code=$?
[[ "$code" == 0 ]] || {
  echo "serving smoke: rdcsynd exited $code after SIGTERM, want 0" >&2
  cat "$smoke_dir/rdcsynd.log" >&2
  exit 1
}
wait "$slow_client_pid" || true
grep -qF '"event": "serve.drain"' "$smoke_dir/serve_events.jsonl" || {
  echo "serving smoke: no serve.drain event" >&2; exit 1
}
./build/tools/rdc_json_check --events "$smoke_dir/serve_events.jsonl"
./build/tools/rdc_json_check "$smoke_dir/serve_metrics.json"
grep -qF '"serve.cache.hit": 1' "$smoke_dir/serve_metrics.json" || {
  echo "serving smoke: final metrics snapshot lacks the cache hit" >&2
  exit 1
}
# Daemon 2: a zero-depth admission queue sheds every request with
# RESOURCE_EXHAUSTED — bounded rejection, not unbounded buffering.
./build/tools/rdcsynd --socket "$serve_sock" --queue 0 \
  2>> "$smoke_dir/rdcsynd.log" & serve_pid=$!
./build/tools/rdcsyn_client ping --socket "$serve_sock" --wait-ms 10000 \
  > /dev/null
code=0
./build/tools/rdcsyn_client run examples/fixtures/builtin.pla \
  --socket "$serve_sock" --pipeline "assign:zero | espresso" \
  > /dev/null 2> "$smoke_dir/serve_shed.txt" || code=$?
[[ "$code" == 3 ]] || {
  echo "serving smoke: shed request exited $code, want 3 (error reply)" >&2
  exit 1
}
grep -q "RESOURCE_EXHAUSTED" "$smoke_dir/serve_shed.txt" || {
  echo "serving smoke: shed reply is not RESOURCE_EXHAUSTED" >&2
  cat "$smoke_dir/serve_shed.txt" >&2
  exit 1
}
kill -TERM "$serve_pid"
code=0; wait "$serve_pid" || code=$?
[[ "$code" == 0 ]] || {
  echo "serving smoke: idle rdcsynd exited $code after SIGTERM, want 0" >&2
  exit 1
}

echo
echo "== perf-regression gate: rdc_perf_diff =="
# Identity self-check: the committed SIMD baseline diffed against itself
# must pass at threshold 0 (byte-deterministic comparator, strict '>').
./build/tools/rdc_perf_diff BENCH_simd.json BENCH_simd.json --threshold 0 \
  > /dev/null
# Synthetic ~25% slowdown fixture must fail at the 10% noise threshold.
if ./build/tools/rdc_perf_diff \
     tools/fixtures/perf_diff/baseline.json \
     tools/fixtures/perf_diff/regressed.json --threshold 10 > /dev/null; then
  echo "perf gate: synthetic regression fixture was not flagged" >&2
  exit 1
fi

echo
echo "== bench smoke: SIMD kernel snapshot validates =="
# A cut-down run of the BENCH_simd.json recipe (the checked-in artifact is
# produced by bench/run_bench_baseline.sh build BENCH_simd.json): the
# snapshot must be a structurally valid rdc.bench.report.v1 document that
# records which backend produced it.
./build/bench/bench_micro \
  --benchmark_filter='BM_(ExactErrorRate|ErrorRateTracker|SampledErrorRate)/16$' \
  --benchmark_min_time=0.05 \
  --json "$smoke_dir/bench_simd.json" > /dev/null
./build/tools/rdc_json_check "$smoke_dir/bench_simd.json" \
  schema suite git_rev date threads compiler simd rows counters

if [[ "$run_sanitizers" == "1" ]]; then
  echo
  echo "== ASan+UBSan build of the unit tests =="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRDC_ENABLE_FUZZERS=ON \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-asan -j --target rdcsyn_tests \
    fuzz_pla fuzz_blif fuzz_aiger fuzz_json fuzz_pipeline_spec fuzz_journal \
    fuzz_serve_frame
  (cd build-asan && ctest --output-on-failure -j)
  echo
  echo "== fuzz corpus replay (ASan+UBSan build) =="
  run_fuzzers build-asan
fi

echo
echo "All checks passed."
