#include "bdd/bdd_ops.hpp"

namespace rdc {

SymbolicSpec to_symbolic(BddManager& mgr, const TernaryTruthTable& f) {
  SymbolicSpec spec;
  spec.on = mgr.from_phase(f, Phase::kOne);
  spec.dc = mgr.from_phase(f, Phase::kDc);
  spec.off = mgr.bdd_and(!spec.on, !spec.dc);
  return spec;
}

double symbolic_neighbor_pairs(BddManager& mgr, BddEdge a, BddEdge b) {
  double total = 0.0;
  for (unsigned j = 0; j < mgr.num_vars(); ++j) {
    // x in a and (x ^ e_j) in b  <=>  x in a ∧ flip_j(b).
    const BddEdge shifted = mgr.flip_var(b, j);
    total += mgr.sat_count(mgr.bdd_and(a, shifted));
  }
  return total;
}

double symbolic_complexity_factor(BddManager& mgr, const SymbolicSpec& spec) {
  const double same = symbolic_neighbor_pairs(mgr, spec.on, spec.on) +
                      symbolic_neighbor_pairs(mgr, spec.off, spec.off) +
                      symbolic_neighbor_pairs(mgr, spec.dc, spec.dc);
  const double n = mgr.num_vars();
  const double size = static_cast<double>(1u << mgr.num_vars());
  return same / (n * size);
}

BorderCounts symbolic_borders(BddManager& mgr, const SymbolicSpec& spec) {
  BorderCounts borders;
  borders.b0 = static_cast<std::uint64_t>(
      symbolic_neighbor_pairs(mgr, spec.off, !spec.off));
  borders.b1 = static_cast<std::uint64_t>(
      symbolic_neighbor_pairs(mgr, spec.on, !spec.on));
  borders.bdc = static_cast<std::uint64_t>(
      symbolic_neighbor_pairs(mgr, spec.dc, !spec.dc));
  return borders;
}

double symbolic_base_error(BddManager& mgr, const SymbolicSpec& spec) {
  return symbolic_neighbor_pairs(mgr, spec.on, spec.off) +
         symbolic_neighbor_pairs(mgr, spec.off, spec.on);
}

}  // namespace rdc
