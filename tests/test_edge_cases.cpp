// Edge-case and failure-injection tests across modules: degenerate sizes,
// constant functions, pass-through outputs, file-level round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "aig/balance.hpp"
#include "aig/simulate.hpp"
#include "common/rng.hpp"
#include "decomp/renode.hpp"
#include "espresso/espresso.hpp"
#include "flow/synthesis_flow.hpp"
#include "io/aiger.hpp"
#include "mapper/liberty.hpp"
#include "mapper/power.hpp"
#include "mapper/tree_map.hpp"
#include "pla/pla_io.hpp"
#include "reliability/assignment.hpp"
#include "reliability/complexity.hpp"
#include "reliability/error_rate.hpp"
#include "sop/factor.hpp"
#include "synthetic/generator.hpp"

namespace rdc {
namespace {

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(EdgeCases, OneInputFunction) {
  TernaryTruthTable f(1);
  f.set_phase(0, Phase::kOne);
  f.set_phase(1, Phase::kDc);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.on_neighbors(1), 1u);
  const ErrorBounds bounds = exact_error_bounds(f);
  EXPECT_EQ(bounds.base_error, 0u);
  // The DC's single neighbor is on: assigning to on masks the error
  // (min 0), assigning to off exposes it (max 1).
  EXPECT_EQ(bounds.min_dc_error, 0u);
  EXPECT_EQ(bounds.max_dc_error, 1u);
  ranking_assign(f, 1.0);
  EXPECT_TRUE(f.is_on(1));
}

TEST(EdgeCases, TwentyInputTruthTableSmoke) {
  // The documented upper bound must actually construct and operate.
  TernaryTruthTable f(20);
  f.set_phase(0, Phase::kOne);
  f.set_phase((1u << 20) - 1, Phase::kDc);
  EXPECT_EQ(f.on_count(), 1u);
  EXPECT_EQ(f.dc_count(), 1u);
  EXPECT_EQ(f.on_neighbors(1), 1u);
}

TEST(EdgeCases, AllDcFunctionThroughFlow) {
  // Everything is a don't care: any implementation is correct and the
  // error rate is 0 (no care sources).
  IncompleteSpec spec("alldc", 4, 2);
  for (auto& f : spec.outputs())
    for (std::uint32_t m = 0; m < f.size(); ++m)
      f.set_phase(m, Phase::kDc);
  const FlowResult result = run_flow(spec, DcPolicy::kRankingFraction);
  EXPECT_DOUBLE_EQ(result.error_rate, 0.0);
  for (unsigned o = 0; o < 2; ++o)
    EXPECT_TRUE(result.implementation.output(o).fully_specified());
}

TEST(EdgeCases, ConstantOutputsThroughFlow) {
  IncompleteSpec spec("consts", 3, 2);
  // Output 0 constant 0, output 1 constant 1.
  for (std::uint32_t m = 0; m < 8; ++m)
    spec.output(1).set_phase(m, Phase::kOne);
  const FlowResult result = run_flow(spec, DcPolicy::kConventional);
  EXPECT_DOUBLE_EQ(result.error_rate, 0.0);
  for (std::uint32_t m = 0; m < 8; ++m) {
    const auto out = result.netlist.evaluate(m);
    EXPECT_FALSE(out.at(0));
    EXPECT_TRUE(out.at(1));
  }
}

TEST(EdgeCases, PassthroughAndInverterOutputs) {
  IncompleteSpec spec("wire", 2, 2);
  for (std::uint32_t m = 0; m < 4; ++m) {
    spec.output(0).set_phase(m, (m & 1) ? Phase::kOne : Phase::kZero);
    spec.output(1).set_phase(m, (m & 1) ? Phase::kZero : Phase::kOne);
  }
  const FlowResult result = run_flow(spec, DcPolicy::kConventional);
  // x0 passes through unprotected: every flip of x0 propagates; the other
  // pin is fully masked. Rate per output = 1/2.
  EXPECT_DOUBLE_EQ(result.error_rate, 0.5);
  EXPECT_LE(result.stats.gates, 1u);  // one inverter at most
}

TEST(EdgeCases, PlaFileRoundTripOnDisk) {
  Rng rng(801);
  IncompleteSpec spec("disk", 5, 3);
  for (auto& f : spec.outputs())
    for (std::uint32_t m = 0; m < f.size(); ++m)
      f.set_phase(m, static_cast<Phase>(rng.below(3)));
  const auto path = temp_file("rdcsyn_roundtrip.pla");
  save_pla(spec, path);
  const IncompleteSpec loaded = load_pla(path);
  EXPECT_EQ(loaded.name(), "rdcsyn_roundtrip");
  ASSERT_EQ(loaded.num_outputs(), spec.num_outputs());
  for (unsigned o = 0; o < spec.num_outputs(); ++o)
    EXPECT_EQ(loaded.output(o), spec.output(o));
  std::filesystem::remove(path);
}

TEST(EdgeCases, AigerFileRoundTripOnDisk) {
  Rng rng(809);
  TernaryTruthTable f(5);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    f.set_phase(m, rng.flip(0.5) ? Phase::kOne : Phase::kZero);
  Aig aig(5);
  aig.add_output(aig.build(factor(minimize(f))));

  const auto path = temp_file("rdcsyn_roundtrip.aag");
  {
    std::ofstream out(path);
    write_aiger(aig, out);
  }
  std::ifstream in(path);
  const Aig loaded = parse_aiger(in);
  EXPECT_EQ(AigSimulator(loaded).output_table(0),
            AigSimulator(aig).output_table(0));
  std::filesystem::remove(path);
}

TEST(EdgeCases, LibertyFileRoundTripOnDisk) {
  const auto path = temp_file("rdcsyn_roundtrip.lib");
  {
    std::ofstream out(path);
    write_liberty(CellLibrary::generic70(), "rt", out);
  }
  const CellLibrary lib = load_liberty(path);
  EXPECT_EQ(lib.cells().size(), CellLibrary::generic70().cells().size());
  std::filesystem::remove(path);
}

TEST(EdgeCases, FlowWithCustomLibraryMatchesBuiltin) {
  Rng rng(811);
  IncompleteSpec spec("lib", 5, 2);
  for (auto& f : spec.outputs())
    for (std::uint32_t m = 0; m < f.size(); ++m)
      f.set_phase(m, static_cast<Phase>(rng.below(3)));

  std::ostringstream text;
  write_liberty(CellLibrary::generic70(), "copy", text);
  const CellLibrary parsed = parse_liberty_string(text.str());

  FlowOptions with_custom;
  with_custom.library = &parsed;
  const FlowResult a = run_flow(spec, DcPolicy::kLcfThreshold, with_custom);
  const FlowResult b = run_flow(spec, DcPolicy::kLcfThreshold);
  EXPECT_EQ(a.stats.gates, b.stats.gates);
  EXPECT_DOUBLE_EQ(a.stats.area, b.stats.area);
  EXPECT_DOUBLE_EQ(a.error_rate, b.error_rate);
}

TEST(EdgeCases, RankingFractionRounding) {
  // Fig. 3 assigns round(fraction * list length) entries; spot-check the
  // boundary behaviour around one half.
  TernaryTruthTable f(3);
  // Three DCs with distinct nonzero weights.
  f.set_phase(0b000, Phase::kDc);
  f.set_phase(0b011, Phase::kDc);
  f.set_phase(0b101, Phase::kDc);
  f.set_phase(0b001, Phase::kOne);
  f.set_phase(0b010, Phase::kOne);
  f.set_phase(0b100, Phase::kOne);
  f.set_phase(0b111, Phase::kOne);
  f.set_phase(0b110, Phase::kZero);
  TernaryTruthTable g = f;
  EXPECT_EQ(ranking_assign(g, 1.0 / 3.0).assigned, 1u);
  g = f;
  EXPECT_EQ(ranking_assign(g, 0.5).assigned, 2u);  // round(1.5) = 2
  g = f;
  EXPECT_EQ(ranking_assign(g, 0.0).assigned, 0u);
}

TEST(EdgeCases, IncrementalRankingZeroFraction) {
  Rng rng(821);
  TernaryTruthTable f(6);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    f.set_phase(m, static_cast<Phase>(rng.below(3)));
  const TernaryTruthTable before = f;
  EXPECT_EQ(ranking_assign_incremental(f, 0.0).assigned, 0u);
  EXPECT_EQ(f, before);
}

TEST(EdgeCases, RenodeOnPassthroughNetwork) {
  Aig aig(3);
  aig.add_output(aig.input_literal(2));
  aig.add_output(aiglit::negate(aig.input_literal(0)));
  aig.add_output(aiglit::kFalse);
  const RenodeResult result = renode_and_assign(aig);
  EXPECT_EQ(result.nodes_total, 0u);
  const AigSimulator sim(result.network);
  for (std::uint32_t m = 0; m < 8; ++m) {
    EXPECT_EQ(sim.literal_value(result.network.outputs()[0], m),
              (m & 4) != 0);
    EXPECT_EQ(sim.literal_value(result.network.outputs()[1], m),
              (m & 1) == 0);
    EXPECT_FALSE(sim.literal_value(result.network.outputs()[2], m));
  }
}

TEST(EdgeCases, BalanceOnTrivialNetworks) {
  Aig aig(2);
  aig.add_output(aiglit::kTrue);
  aig.add_output(aig.input_literal(1));
  const Aig balanced = balance(aig);
  EXPECT_EQ(balanced.outputs()[0], aiglit::kTrue);
  EXPECT_EQ(balanced.outputs()[1], balanced.input_literal(1));
}

TEST(EdgeCases, GeneratorZeroDcExtremeTargets) {
  Rng rng(823);
  // Target 0 with balanced split: as parity-like as swaps can reach.
  SyntheticOptions options = options_for_target(6, 0.0, 0.0);
  options.tolerance = 0.02;
  const TernaryTruthTable f = generate_function(options, rng);
  EXPECT_LT(complexity_factor(f), 0.1);
}

TEST(EdgeCases, ComplexityFactorOfAllDc) {
  TernaryTruthTable f(4);
  for (std::uint32_t m = 0; m < 16; ++m) f.set_phase(m, Phase::kDc);
  EXPECT_DOUBLE_EQ(complexity_factor(f), 1.0);
  EXPECT_DOUBLE_EQ(expected_complexity_factor(f), 1.0);
}

TEST(EdgeCases, NetLoadsAccumulate) {
  const CellLibrary& lib = CellLibrary::generic70();
  Netlist nl(1);
  const std::uint32_t a = nl.add_gate(CellKind::kInv, {nl.input_net(0)});
  nl.add_gate(CellKind::kInv, {a});
  nl.add_gate(CellKind::kInv, {a});
  nl.add_output(a);
  const auto loads = nl.net_loads(lib);
  // Net a feeds two inverter pins plus the output's nominal load.
  EXPECT_DOUBLE_EQ(loads[a],
                   2.0 * lib.inverter().input_cap + lib.nominal_load());
}

}  // namespace
}  // namespace rdc
