#include "mapper/power.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace rdc {

std::vector<double> net_probabilities(const Netlist& netlist) {
  const unsigned n = netlist.num_inputs();
  if (n > TernaryTruthTable::kMaxInputs)
    throw std::invalid_argument("net_probabilities: too many inputs");
  const std::uint32_t vectors = num_minterms(n);
  std::vector<std::uint64_t> ones(netlist.num_nets(), 0);
  for (std::uint32_t m = 0; m < vectors; ++m) {
    // evaluate() returns outputs only; recompute values inline instead.
    // To avoid re-simulating per net we rely on evaluate()'s internal order:
    // replicate it here for all nets.
    std::vector<bool> value(netlist.num_nets(), false);
    for (unsigned i = 0; i < n; ++i) value[i] = (m >> i) & 1u;
    bool pins[8];
    for (const Gate& g : netlist.gates()) {
      std::size_t k = 0;
      for (const std::uint32_t f : g.fanins) pins[k++] = value[f];
      value[g.output_net] =
          evaluate_cell(g.kind, std::span<const bool>(pins, k));
    }
    for (std::uint32_t net = 0; net < netlist.num_nets(); ++net)
      if (value[net]) ++ones[net];
  }
  std::vector<double> p(netlist.num_nets());
  for (std::uint32_t net = 0; net < netlist.num_nets(); ++net)
    p[net] = static_cast<double>(ones[net]) / vectors;
  return p;
}

PowerReport estimate_power(const Netlist& netlist, const CellLibrary& lib) {
  const std::vector<double> prob = net_probabilities(netlist);
  const std::vector<double> load = netlist.net_loads(lib);

  // Map each net to the internal energy of its driving cell (primary inputs
  // have no driver).
  std::vector<double> internal(netlist.num_nets(), 0.0);
  for (const Gate& g : netlist.gates())
    internal[g.output_net] = lib.cell(g.kind).internal_energy;

  PowerReport report;
  for (std::uint32_t net = 0; net < netlist.num_nets(); ++net) {
    const double alpha = 2.0 * prob[net] * (1.0 - prob[net]);
    report.dynamic_uw += alpha * (0.5 * load[net] + internal[net]);
  }
  report.leakage_nw = netlist.leakage(lib);
  return report;
}

NetlistStats analyze_netlist(const Netlist& netlist, const CellLibrary& lib) {
  NetlistStats stats;
  stats.gates = netlist.gate_count();
  stats.area = netlist.area(lib);
  stats.delay_ps = netlist.critical_delay(lib);
  stats.power_uw = estimate_power(netlist, lib).total_uw();
  return stats;
}

}  // namespace rdc
