// Example: the Section-4 extension on a multi-level network.
//
// Builds a conventionally synthesized circuit, decomposes it into nodes,
// extracts the internal (satisfiability) don't cares of each node, assigns
// them with the reliability-driven LC^f algorithm, and reports structure
// and internal-masking changes.
//
//   ./internal_dcs [benchmark-name]   (default: test4)
#include <cstdio>
#include <string>

#include "aig/aig.hpp"
#include "benchdata/suite.hpp"
#include "common/rng.hpp"
#include "decomp/renode.hpp"
#include "espresso/espresso.hpp"
#include "mapper/power.hpp"
#include "mapper/tree_map.hpp"
#include "sop/factor.hpp"

int main(int argc, char** argv) {
  using namespace rdc;
  const std::string name = argc > 1 ? argv[1] : "test4";

  IncompleteSpec spec = make_benchmark(name);
  conventional_assign(spec);

  Aig aig(spec.num_inputs());
  for (const auto& f : spec.outputs())
    aig.add_output(aig.build(factor(minimize(f))));
  std::printf("'%s' conventional network: %zu AND nodes, depth %u\n",
              name.c_str(), aig.num_ands(), aig.depth());

  for (const bool reliability : {false, true}) {
    RenodeOptions options;
    options.reliability_assign = reliability;
    const RenodeResult result = renode_and_assign(aig, options);

    const CellLibrary& lib = CellLibrary::generic70();
    const NetlistStats stats =
        analyze_netlist(map_aig(result.network, lib), lib);

    Rng rng(42);
    const double masking =
        internal_error_rate(result.network, 3000, rng);

    std::printf(
        "\nrenode (%s):\n"
        "  nodes visited %zu, resynthesized %zu\n"
        "  internal DC patterns found %llu, reliability-assigned %llu\n"
        "  network: %zu ANDs -> mapped %zu gates, area %.1f um^2\n"
        "  internal error propagation rate: %.3f\n",
        reliability ? "SDC + LC^f reliability assignment"
                    : "SDC minimization only",
        result.nodes_total, result.nodes_resynthesized,
        static_cast<unsigned long long>(result.sdc_patterns),
        static_cast<unsigned long long>(result.dcs_assigned),
        result.network.num_ands(), stats.gates, stats.area, masking);
  }
  std::printf(
      "\nSDC-only rewrites preserve every primary output exactly; the\n"
      "reliability variant trades some area for higher internal masking.\n");
  return 0;
}
