// Crash-safe batch execution (DESIGN.md §14): run_pipeline_batch's
// semantics — one deterministic report row per circuit, failures isolated
// per row — lifted onto the process-isolation supervisor so a worker
// SIGSEGV, OOM kill, or hang becomes an INTERNAL / RESOURCE_EXHAUSTED /
// DEADLINE_EXCEEDED row instead of batch death.
//
// Identity: every (circuit, pipeline, options) job gets a stable 64-bit
// key hashed from the spec's serialized .pla bytes, its name, the
// canonical pipeline spec, and flow_options_fingerprint(). The key seeds
// both the journal (resume matching) and the chaos harness (decision
// reproducibility), which is what makes an interrupted-and-resumed batch
// byte-identical to an uninterrupted one.
//
// Journal: with `journal_path` set, every job appends rdc.journal.v1
// state transitions (pending → running → done/failed, fsync'd); terminal
// records embed the finished report row so `resume` can restore it
// byte-for-byte without re-running the job. A job interrupted mid-run is
// left in state "running" and re-executes on resume — at-least-once,
// never lost, never duplicated into the report.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/supervisor.hpp"
#include "flow/pipeline.hpp"

namespace rdc::flow {

/// Deterministic fingerprint of every result-affecting knob in
/// (FlowOptions, BudgetLimits). The cell library pointer is not
/// hashed — callers mixing libraries in one journal must use distinct
/// journal paths.
std::uint64_t flow_options_fingerprint(const FlowOptions& options,
                                       const exec::BudgetLimits& budget);

/// Stable job key: hash(spec .pla bytes, spec name, pipeline spec,
/// options fingerprint, salt). `salt` disambiguates repeated identical
/// specs within one batch (occurrence index).
std::uint64_t batch_job_key(const IncompleteSpec& spec,
                            std::string_view pipeline_spec,
                            const BatchOptions& options,
                            std::uint64_t salt = 0);

struct SupervisedBatchOptions {
  BatchOptions batch;          ///< flow options / per-job budget / suite
  exec::RetryPolicy retry;     ///< transient-failure retry policy
  exec::WorkerLimits limits;   ///< hard per-attempt wall/RSS caps
  int max_parallel = 1;        ///< concurrently forked workers
  std::string journal_path;    ///< empty = no journal (no resume)
  /// Replay an existing journal first: terminal jobs contribute their
  /// recorded rows, everything else re-runs. A missing journal file is a
  /// fresh run, not an error.
  bool resume = false;
  /// Stop launching after this many completions (0 = all) — the
  /// deterministic mid-flight interruption used by the chaos smoke.
  std::size_t max_completions = 0;
};

struct SupervisedBatchResult {
  /// Aggregated rdc.bench.report.v1 document, rows in input order.
  /// Interrupted runs only contain rows for jobs that reached a terminal
  /// outcome (this run or a replayed journal).
  obs::RunReport report{std::string("pipeline_batch")};
  std::size_t failures = 0;   ///< rows with a non-OK status
  std::size_t resumed = 0;    ///< rows restored from the journal
  std::size_t executed = 0;   ///< jobs run to a terminal outcome here
  std::size_t skipped = 0;    ///< jobs left pending/running (interrupted)
  bool interrupted = false;   ///< max_completions hit or shutdown signal
};

/// Runs `pipeline_spec` over every spec under the process supervisor.
/// Only the batch-level setup can fail (unparsable pipeline spec,
/// unwritable journal); per-job failures of every kind are rows.
exec::Result<SupervisedBatchResult> run_pipeline_batch_supervised(
    const std::string& pipeline_spec,
    const std::vector<IncompleteSpec>& specs,
    const SupervisedBatchOptions& options);

}  // namespace rdc::flow
