// Shared helpers for the experiment harnesses: suite access with in-process
// caching, per-circuit fan-out over the process-wide thread pool,
// fixed-width table printing, normalization utilities, the common
// `--json <path>` machine-readable report mode (schema in DESIGN.md §9),
// and the fault-isolation wrappers of §10 (`run_guarded`, `guarded_rows`)
// that turn one bad circuit into one error row instead of a dead harness.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchdata/suite.hpp"
#include "common/thread_pool.hpp"
#include "exec/budget.hpp"
#include "exec/status.hpp"
#include "flow/synthesis_flow.hpp"
#include "obs/counters.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace rdc::bench {

/// The Table-1 suite, generated once per process.
inline const std::vector<IncompleteSpec>& suite() {
  static const std::vector<IncompleteSpec> instance = table1_suite();
  return instance;
}

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Computes fn(0..count-1) on the shared pool (RDC_THREADS workers) and
/// returns the results in index order — the harnesses' per-circuit fan-out.
/// Results print sequentially afterwards, so table rows stay deterministic
/// regardless of the thread count.
template <typename Row, typename Fn>
std::vector<Row> parallel_rows(std::size_t count, Fn fn) {
  std::vector<Row> rows(count);
  ThreadPool::global().parallel_for(0, count, [&](std::uint64_t i) {
    rows[i] = fn(static_cast<std::size_t>(i));
  });
  return rows;
}

/// Percent improvement of `value` relative to `baseline` (positive = better
/// = smaller), matching the sign convention of the paper's Table 2.
inline double improvement_percent(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return (baseline - value) / baseline * 100.0;
}

/// value / baseline, guarding the degenerate baseline.
inline double normalized(double baseline, double value) {
  return baseline == 0.0 ? 1.0 : value / baseline;
}

/// Command-line options shared by every table/figure harness.
struct Options {
  std::string json_path;      ///< empty: print the table only
  double deadline_ms = 0.0;   ///< per-circuit wall-clock budget; 0 = none
  std::string circuits_path;  ///< external circuit list (bench_table1)
};

/// Runs one unit of harness work behind the full §10 boundary: a fresh
/// per-circuit deadline budget (when --deadline-ms was given) plus the
/// exception→Status conversion. Exceptions never escape, so one circuit's
/// parse error, deadline or injected fault cannot take down the run — and,
/// with the stop-on-throw thread pool, cannot cancel its sibling rows.
template <typename Fn>
exec::Status run_guarded(const Options& options, Fn&& fn) {
  try {
    if (options.deadline_ms > 0.0) {
      exec::ExecBudget budget =
          exec::ExecBudget::with_deadline_ms(options.deadline_ms);
      exec::BudgetScope scope(&budget);
      fn();
    } else {
      fn();
    }
    return exec::Status();
  } catch (...) {
    return exec::status_from_current_exception();
  }
}

/// parallel_rows plus per-row fault isolation: rows[i] keeps its
/// default-constructed value when statuses[i] is a failure.
template <typename Row>
struct GuardedRows {
  std::vector<Row> rows;
  std::vector<exec::Status> statuses;

  bool ok(std::size_t i) const { return statuses[i].ok(); }
  std::size_t failures() const {
    std::size_t n = 0;
    for (const exec::Status& s : statuses)
      if (!s.ok()) ++n;
    return n;
  }
};

template <typename Row, typename Fn>
GuardedRows<Row> guarded_rows(const Options& options, std::size_t count,
                              Fn fn) {
  GuardedRows<Row> out;
  out.rows.resize(count);
  out.statuses.resize(count);
  ThreadPool::global().parallel_for(0, count, [&](std::uint64_t i) {
    out.statuses[i] = run_guarded(options, [&] {
      out.rows[i] = fn(static_cast<std::size_t>(i));
    });
  });
  return out;
}

/// Appends the rdc.bench.report.v1 error row for a failed circuit: the
/// `status` field carries the stable UPPER_SNAKE code, `error` the full
/// message with context chain.
inline void add_error_row(obs::RunReport& report, const std::string& name,
                          const exec::Status& status) {
  obs::Record& row = report.add_row();
  row.set("name", name);
  row.set("status", exec::status_code_name(status.code()));
  row.set("error", status.to_string());
}

/// Console twin of add_error_row, keeping failed circuits visible in the
/// printed table.
inline void print_error_row(const std::string& name,
                            const exec::Status& status) {
  std::printf("%-12s ERROR %s\n", name.c_str(), status.to_string().c_str());
}

/// Parses the common harness arguments (`--json <path>` / `--json=<path>`,
/// `--help`). Returns false after printing a usage note on `--help` or an
/// unknown argument; the caller should then exit (0 for help, 2 otherwise,
/// as reported in `exit_code`). Counter collection is switched on as soon
/// as a JSON report is requested so the report's counters block is
/// populated even without RDC_TRACE.
inline bool parse_args(int argc, char** argv, Options& options,
                       int& exit_code) {
  // Resolve RDC_TRACE up front: the lazy init runs on the first span, and a
  // harness whose work stays on the inline parallel_for path may execute
  // none — the atexit trace flush must still be installed. Same story for
  // the RDC_METRICS snapshotter and the RDC_EVENTS sink.
  obs::trace_mode();
  obs::metrics_init_from_env();
  obs::events_enabled();
  exit_code = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "usage: %s [--json <path>] [--deadline-ms <ms>] "
          "[--circuits <list>]\n"
          "  --json <path>      also write a machine-readable run report\n"
          "                     (schema rdc.bench.report.v1, see DESIGN.md)\n"
          "  --deadline-ms <ms> per-circuit wall-clock budget; circuits\n"
          "                     that exceed it become DEADLINE_EXCEEDED\n"
          "                     error rows and the run continues\n"
          "  --circuits <list>  file with one .pla/.blif path per line\n"
          "                     (bench_table1 only; replaces the suite)\n"
          "Environment: RDC_THREADS, RDC_TRACE, RDC_COUNTERS, RDC_FAULT,\n"
          "RDC_METRICS=<path>[:interval_ms] (live metric snapshots),\n"
          "RDC_EVENTS=<path> (rdc.events.v1 lifecycle log),\n"
          "RDC_PERF=1 (hardware counters on spans/passes) — see DESIGN.md.\n",
          argv[0]);
      return false;
    }
    if (std::strcmp(arg, "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --json requires a path argument\n", argv[0]);
        exit_code = 2;
        return false;
      }
      options.json_path = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path = arg + 7;
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --deadline-ms requires a value\n", argv[0]);
        exit_code = 2;
        return false;
      }
      options.deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      options.deadline_ms = std::strtod(arg + 14, nullptr);
    } else if (std::strcmp(arg, "--circuits") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --circuits requires a path\n", argv[0]);
        exit_code = 2;
        return false;
      }
      options.circuits_path = argv[++i];
    } else if (std::strncmp(arg, "--circuits=", 11) == 0) {
      options.circuits_path = arg + 11;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", argv[0],
                   arg);
      exit_code = 2;
      return false;
    }
  }
  if (!options.json_path.empty()) obs::set_counters_enabled(true);
  return true;
}

/// Writes the report when --json was requested; returns the process exit
/// code for main().
inline int finish(const Options& options, const obs::RunReport& report) {
  if (options.json_path.empty()) return 0;
  if (!report.write_file(options.json_path)) return 1;
  std::printf("\n[report: %s]\n", options.json_path.c_str());
  return 0;
}

}  // namespace rdc::bench
