#include "espresso/expand.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "exec/budget.hpp"

namespace rdc {
namespace {

bool intersects_cover(const Cube& c, const Cover& cover) {
  for (const Cube& q : cover.cubes())
    if (c.intersects(q, cover.num_inputs())) return true;
  return false;
}

}  // namespace

Cube expand_cube(const Cube& c, const Cover& off, const Cover& peers) {
  const unsigned n = off.num_inputs();
  Cube current = c;
  while (true) {
    int best_var = -1;
    std::size_t best_gain = 0;
    bool best_valid = false;
    for (unsigned j = 0; j < n; ++j) {
      const bool fixed =
          test_bit(current.mask0, j) != test_bit(current.mask1, j);
      if (!fixed) continue;
      const Cube raised = current.expanded(j);
      if (intersects_cover(raised, off)) continue;
      // Gain: peer cubes newly contained by the raised cube.
      std::size_t gain = 0;
      for (const Cube& p : peers.cubes())
        if (raised.contains(p) && !current.contains(p)) ++gain;
      if (!best_valid || gain > best_gain) {
        best_valid = true;
        best_var = static_cast<int>(j);
        best_gain = gain;
      }
    }
    if (!best_valid) break;
    current = current.expanded(static_cast<unsigned>(best_var));
  }
  return current;
}

Cover expand(const Cover& on, const Cover& off) {
  const unsigned n = on.num_inputs();

  // Process small cubes first: they have the most to gain, and the cubes
  // they absorb never need their own expansion.
  std::vector<std::size_t> order(on.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return on.cube(a).literal_count(n) > on.cube(b).literal_count(n);
  });

  Cover result(n);
  std::vector<bool> covered(on.size(), false);
  for (std::size_t idx : order) {
    if (covered[idx]) continue;
    exec::checkpoint();  // per-cube budget poll (DESIGN.md §10)
    const Cube prime = expand_cube(on.cube(idx), off, on);
    result.add(prime);
    for (std::size_t i = 0; i < on.size(); ++i)
      if (!covered[i] && prime.contains(on.cube(i))) covered[i] = true;
  }
  result.remove_single_cube_contained();
  return result;
}

}  // namespace rdc
