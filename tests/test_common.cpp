// Unit tests for the common utilities: bit helpers, packed bitsets, the
// thread pool, RNG, statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "common/bits.hpp"
#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace rdc {
namespace {

TEST(Bits, NumMinterms) {
  EXPECT_EQ(num_minterms(0), 1u);
  EXPECT_EQ(num_minterms(1), 2u);
  EXPECT_EQ(num_minterms(10), 1024u);
  EXPECT_EQ(num_minterms(20), 1u << 20);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(hamming_distance(0b0000, 0b0000), 0u);
  EXPECT_EQ(hamming_distance(0b0100, 0b0110), 1u);
  EXPECT_EQ(hamming_distance(0b1111, 0b0000), 4u);
  EXPECT_EQ(hamming_distance(0xFFFFFFFFu, 0u), 32u);
}

TEST(Bits, FlipBitIsInvolutive) {
  for (unsigned j = 0; j < 20; ++j) {
    EXPECT_EQ(flip_bit(flip_bit(12345u, j), j), 12345u);
    EXPECT_EQ(hamming_distance(12345u, flip_bit(12345u, j)), 1u);
  }
}

TEST(Bits, TestBit) {
  EXPECT_TRUE(test_bit(0b0100, 2));
  EXPECT_FALSE(test_bit(0b0100, 1));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) any_different |= (a() != b());
  EXPECT_TRUE(any_different);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.below(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.below(8)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Stats, SummarizeEmpty) {
  // Documented contract (see Summary): an empty sample reports count == 0
  // with zeroed moments — consumers must branch on count/empty(), because
  // the zeros alone cannot be told apart from an all-zero sample.
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeEmptyDistinguishableFromAllZero) {
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  const Summary all_zero = summarize(zeros);
  const Summary empty = summarize({});
  // Same moments, different count — empty() is the only reliable signal.
  EXPECT_EQ(all_zero.mean, empty.mean);
  EXPECT_FALSE(all_zero.empty());
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(all_zero.count, 3u);
}

TEST(Stats, SummarizeBasics) {
  const std::vector<double> values{3.0, 1.0, 2.0};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(Stats, NormalCdfSymmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0) + normal_cdf(-1.0), 1.0, 1e-12);
  EXPECT_NEAR(normal_cdf(5.0), 1.0, 1e-6);
}

TEST(Stats, FoldedNormalZeroMean) {
  // E|Z| = sigma * sqrt(2/pi) for zero-mean Gaussians.
  EXPECT_NEAR(folded_normal_mean(0.0, 1.0), std::sqrt(2.0 / std::numbers::pi),
              1e-12);
  EXPECT_NEAR(folded_normal_mean(0.0, 2.0),
              2.0 * std::sqrt(2.0 / std::numbers::pi), 1e-12);
}

TEST(Stats, FoldedNormalLargeMeanApproachesMean) {
  // With mu >> sigma, |Z| ~ Z.
  EXPECT_NEAR(folded_normal_mean(10.0, 0.5), 10.0, 1e-6);
}

TEST(Stats, FoldedNormalDegenerateSigma) {
  EXPECT_DOUBLE_EQ(folded_normal_mean(-3.0, 0.0), 3.0);
}

TEST(Stats, PoissonPmfSumsToOne) {
  const double lambda = 3.7;
  double sum = 0.0;
  for (unsigned k = 0; k < 80; ++k) sum += poisson_pmf(k, lambda);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Stats, PoissonPmfMeanMatchesLambda) {
  const double lambda = 2.4;
  double mean = 0.0;
  for (unsigned k = 0; k < 80; ++k) mean += k * poisson_pmf(k, lambda);
  EXPECT_NEAR(mean, lambda, 1e-9);
}

TEST(Stats, PoissonZeroLambda) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
}

BitVec random_bitvec(std::uint64_t bits, Rng& rng) {
  BitVec v(bits);
  for (std::uint64_t i = 0; i < bits; ++i) v.set(i, rng.flip(0.5));
  return v;
}

TEST(BitVec, GetSetCount) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.num_words(), 3u);
  EXPECT_EQ(v.count(), 0u);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 3u);
  v.set(64, false);
  EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, ComplementRespectsTail) {
  // Sub-word vector: the complement must not set bits past size().
  BitVec v(8);
  v.set(3, true);
  const BitVec c = v.complement();
  EXPECT_EQ(c.count(), 7u);
  EXPECT_FALSE(c.get(3));
  EXPECT_TRUE(c.get(0));
  EXPECT_EQ(c.complement(), v);
}

TEST(BitVec, FillRespectsTail) {
  BitVec v(20);
  v.fill();
  EXPECT_EQ(v.count(), 20u);
  BitVec w(128);
  w.fill();
  EXPECT_EQ(w.count(), 128u);
}

TEST(BitVec, SetAlgebraMatchesPerBit) {
  Rng rng(404);
  const BitVec a = random_bitvec(200, rng);
  const BitVec b = random_bitvec(200, rng);
  const BitVec conj = bv_and(a, b);
  const BitVec disj = bv_or(a, b);
  const BitVec sym = bv_xor(a, b);
  const BitVec diff = bv_andnot(a, b);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(conj.get(i), a.get(i) && b.get(i));
    EXPECT_EQ(disj.get(i), a.get(i) || b.get(i));
    EXPECT_EQ(sym.get(i), a.get(i) != b.get(i));
    EXPECT_EQ(diff.get(i), a.get(i) && !b.get(i));
  }
  EXPECT_EQ(popcount_and(a, b), conj.count());
  EXPECT_EQ(popcount_xor_and(a, b, disj), bv_and(sym, disj).count());
}

TEST(BitVec, NeighborShiftMatchesFlipBit) {
  // Covers both regimes: in-word shifts (j < 6) and word swaps (j >= 6),
  // plus the sub-word lattices (n < 6).
  Rng rng(405);
  for (unsigned n = 1; n <= 8; ++n) {
    const BitVec v = random_bitvec(1u << n, rng);
    for (unsigned j = 0; j < n; ++j) {
      const BitVec shifted = v.neighbor_shift(j);
      for (std::uint32_t m = 0; m < (1u << n); ++m)
        ASSERT_EQ(shifted.get(m), v.get(flip_bit(m, j)))
            << "n=" << n << " j=" << j << " m=" << m;
      // The permutation is an involution.
      EXPECT_EQ(shifted.neighbor_shift(j), v);
      // shift_xor_neighbors is the value-change predicate.
      const BitVec changed = v.shift_xor_neighbors(j);
      for (std::uint32_t m = 0; m < (1u << n); ++m)
        ASSERT_EQ(changed.get(m), v.get(m) != v.get(flip_bit(m, j)));
    }
  }
}

TEST(BitVec, XorPermuteMatchesIndexXor) {
  Rng rng(406);
  for (unsigned n : {3u, 7u, 9u}) {
    const BitVec v = random_bitvec(1u << n, rng);
    for (int trial = 0; trial < 8; ++trial) {
      const auto mask =
          static_cast<std::uint32_t>(rng.below(1u << n));
      const BitVec permuted = v.xor_permute(mask);
      for (std::uint32_t m = 0; m < (1u << n); ++m)
        ASSERT_EQ(permuted.get(m), v.get(m ^ mask))
            << "n=" << n << " mask=" << mask << " m=" << m;
    }
  }
}

TEST(BitVec, ForEachSetVisitsInOrder) {
  BitVec v(150);
  v.set(5, true);
  v.set(77, true);
  v.set(149, true);
  std::vector<std::uint64_t> seen;
  v.for_each_set([&](std::uint64_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{5, 77, 149}));
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleRanges) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(7, 8, [&](std::uint64_t i) {
    EXPECT_EQ(i, 7u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::uint64_t) {
    pool.parallel_for(0, 8, [&](std::uint64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 16,
                                 [&](std::uint64_t i) {
                                   if (i == 7)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> ok{0};
  pool.parallel_for(0, 4, [&](std::uint64_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, PropagatesExceptionMessageAndStopsScheduling) {
  // After a throw the pool stops scheduling unclaimed indices (§10
  // fail-fast contract): everything below the throwing index still runs
  // (those indices were claimed first), the caller receives the first
  // error intact, and at least the already-claimed tail may run too.
  //
  // Tail cancellation is best-effort, not deterministic: `stop` is only
  // published after the throwing body unwinds, so if the OS deschedules
  // the worker right after it claims the throwing index, its peers can
  // legally drain the whole range first. Assert the cancellation half
  // over a few rounds; the deterministic halves stay strict every round.
  bool tail_cancelled = false;
  for (int round = 0; round < 5 && !tail_cancelled; ++round) {
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    std::atomic<std::uint64_t> below_three{0};
    try {
      pool.parallel_for(0, 1 << 14, [&](std::uint64_t i) {
        if (i == 3) throw std::runtime_error("index 3 failed");
        executed.fetch_add(1);
        if (i < 3) below_three.fetch_add(1);
      });
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "index 3 failed");
    }
    EXPECT_EQ(below_three.load(), 3u);  // lower indices always complete
    tail_cancelled = executed.load() < (1 << 14) - 1;
  }
  EXPECT_TRUE(tail_cancelled);  // the tail was cancelled in some round
}

TEST(ThreadPool, LowestThrowingIndexWinsDeterministically) {
  // Indices are claimed in increasing order, so when several indices throw
  // the caller always sees the lowest one — at any thread count.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(8);
    try {
      pool.parallel_for(0, 64, [&](std::uint64_t i) {
        if (i == 3 || i == 7) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "3");
    }
  }
}

TEST(ThreadPool, NestedExceptionStillPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](std::uint64_t) {
                                   pool.parallel_for(0, 4, [&](std::uint64_t j) {
                                     if (j == 2)
                                       throw std::runtime_error("inner");
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedAcrossDistinctPoolsDoesNotDeadlock) {
  // Nesting is detected per thread, not per pool: a worker of pool A that
  // calls into pool B must run inline rather than block on B's queue.
  ThreadPool outer(4);
  ThreadPool inner(4);
  std::atomic<int> total{0};
  outer.parallel_for(0, 8, [&](std::uint64_t) {
    inner.parallel_for(0, 8, [&](std::uint64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, DeeplyNestedCallsComplete) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.parallel_for(0, 2, [&](std::uint64_t) {
    pool.parallel_for(0, 2, [&](std::uint64_t) {
      pool.parallel_for(0, 2, [&](std::uint64_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 8);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int serial = 0;  // no atomics needed: everything runs on this thread
  pool.parallel_for(0, 100, [&](std::uint64_t) { ++serial; });
  EXPECT_EQ(serial, 100);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> hits{0};
  ThreadPool::global().parallel_for(0, 32,
                                    [&](std::uint64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 32);
  EXPECT_GE(ThreadPool::global().num_threads(), 1u);
}

}  // namespace
}  // namespace rdc
