#!/usr/bin/env bash
# Snapshots the kernel-layer microbenchmarks into BENCH_kernels.json so
# future PRs can track the perf trajectory of the word-parallel kernels
# against their scalar references.
#
# The artifact is an rdc.bench.report.v1 document (bench_micro --json):
# alongside the per-benchmark rows it records the run metadata — git
# revision, UTC date, thread count, compiler, and host context (CPU
# model, core count, selected SIMD backend) — so a snapshot is
# attributable to the commit and machine that produced it, and a
# rdc_perf_diff verdict can be sanity-checked against hardware drift.
#
# Usage: bench/run_bench_baseline.sh [build-dir] [output-json]
# Defaults: build-dir = build, output = BENCH_kernels.json (repo root).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
output="${2:-$repo_root/BENCH_kernels.json}"

bench_micro="$build_dir/bench/bench_micro"
if [[ ! -x "$bench_micro" ]]; then
  echo "bench_micro not found at $bench_micro — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target bench_micro" >&2
  exit 1
fi

# The binary bakes in the revision it was configured at; point RDC_GIT_REV
# at the current checkout so the snapshot names the commit actually built
# (a stale build dir would otherwise report the configure-time revision).
if git_rev="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null)"; then
  export RDC_GIT_REV="$git_rev"
fi

"$bench_micro" \
  --benchmark_filter='BM_(ExactErrorRate|ExactErrorRateScalar|NeighborTable|NeighborTableScalar|ComplexityFactor|ComplexityFactorScalar|ErrorRateKbit|ErrorRateTracker|SampledErrorRate)(/|$)' \
  --benchmark_repetitions=1 \
  --json "$output"

echo
echo "Kernel benchmark snapshot written to $output"

# Report the headline word-parallel vs scalar speedups when python3 is
# around (informational only; the JSON is the artifact).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$output" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    data = json.load(fh)
meta = {k: data[k]
        for k in ("git_rev", "date", "threads", "compiler", "cpu", "cores",
                  "simd")
        if k in data}
print("\nrun metadata:", ", ".join(f"{k}={v}" for k, v in meta.items()))
times = {row["name"]: row["real_time"] for row in data["rows"]}
print("word-parallel speedup over scalar reference:")
for kernel in ("BM_ExactErrorRate", "BM_NeighborTable", "BM_ComplexityFactor"):
    for arg in (8, 10, 12, 14, 16, 20):
        fast = times.get(f"{kernel}/{arg}")
        slow = times.get(f"{kernel}Scalar/{arg}")
        if fast and slow:
            print(f"  {kernel}/{arg}: {slow / fast:.1f}x")
EOF
fi
