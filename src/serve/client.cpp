#include "serve/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define RDC_SERVE_POSIX 1
#endif

namespace rdc::serve {

#if defined(RDC_SERVE_POSIX)

namespace {

double now_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

exec::Status transport_error(const std::string& what) {
  return {exec::StatusCode::kUnavailable, what + ": " + std::strerror(errno)};
}

struct Socket {
  int fd = -1;
  ~Socket() {
    if (fd >= 0) close(fd);
  }
};

exec::Status connect_unix(const ClientOptions& options, Socket& sock) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.empty() ||
      options.socket_path.size() >= sizeof addr.sun_path)
    return {exec::StatusCode::kInvalidArgument,
            "bad socket path: " + options.socket_path};
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  sock.fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (sock.fd < 0) return transport_error("socket()");
  if (connect(sock.fd, reinterpret_cast<const sockaddr*>(&addr),
              sizeof addr) != 0)
    return transport_error("connect " + options.socket_path);
  const int flags = fcntl(sock.fd, F_GETFL, 0);
  if (flags < 0 || fcntl(sock.fd, F_SETFL, flags | O_NONBLOCK) != 0)
    return transport_error("fcntl");
  return {};
}

exec::Status wait_io(int fd, short events, double deadline) {
  for (;;) {
    const double remaining = deadline - now_ms();
    if (remaining <= 0)
      return {exec::StatusCode::kDeadlineExceeded,
              "client I/O deadline expired"};
    pollfd pfd{fd, events, 0};
    const int n = poll(&pfd, 1, static_cast<int>(remaining) + 1);
    if (n > 0) return {};
    if (n < 0 && errno != EINTR) return transport_error("poll");
  }
}

exec::Status write_all(int fd, std::string_view bytes, double deadline) {
  std::size_t at = 0;
  while (at < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + at, bytes.size() - at, MSG_NOSIGNAL);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (exec::Status status = wait_io(fd, POLLOUT, deadline); !status.ok())
        return status;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return transport_error("send");
  }
  return {};
}

/// Reads until the decoder yields one frame (or errors).
exec::Status read_frame(int fd, FrameDecoder& decoder, Frame& frame,
                        double deadline) {
  char buf[1 << 16];
  for (;;) {
    switch (decoder.next(frame)) {
      case FrameDecoder::Result::kFrame:
        return {};
      case FrameDecoder::Result::kError:
        return decoder.error();
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    const ssize_t n = read(fd, buf, sizeof buf);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0)
      return {exec::StatusCode::kUnavailable,
              "connection closed before a reply frame"};
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (exec::Status status = wait_io(fd, POLLIN, deadline); !status.ok())
        return status;
      continue;
    }
    if (errno == EINTR) continue;
    return transport_error("read");
  }
}

/// One connection, one request, one reply.
SubmitResult submit_once(const ClientOptions& options,
                         const JobRequest& request) {
  SubmitResult result;
  result.transport_error = true;  // until a reply frame is decoded
  const double deadline = now_ms() + options.io_timeout_ms;
  Socket sock;
  if (exec::Status status = connect_unix(options, sock); !status.ok()) {
    result.status = std::move(status);
    return result;
  }
  if (exec::Status status =
          write_all(sock.fd, encode_request(request), deadline);
      !status.ok()) {
    result.status = std::move(status);
    return result;
  }
  FrameDecoder decoder;
  Frame frame;
  if (exec::Status status = read_frame(sock.fd, decoder, frame, deadline);
      !status.ok()) {
    result.status = std::move(status);
    return result;
  }
  result.transport_error = false;
  switch (frame.type) {
    case FrameType::kReportReply: {
      ReportReply reply;
      if (exec::Status status = decode_report_reply(frame.body, reply);
          !status.ok()) {
        result.status = std::move(status);
        return result;
      }
      result.report_json = std::move(reply.report_json);
      result.cache_hit = reply.cache_hit;
      return result;  // status stays OK
    }
    case FrameType::kErrorReply: {
      exec::Status decoded;
      if (exec::Status status = decode_error_reply(frame.body, decoded);
          !status.ok()) {
        result.status = std::move(status);
        return result;
      }
      result.status = std::move(decoded);
      return result;
    }
    default:
      result.status = {exec::StatusCode::kInternal,
                       "unexpected reply frame type " +
                           std::to_string(static_cast<int>(frame.type))};
      return result;
  }
}

}  // namespace

bool result_is_transient(const SubmitResult& result) {
  exec::JobOutcome outcome;
  outcome.status = result.status;
  outcome.crashed = result.transport_error;
  return exec::outcome_is_transient(outcome);
}

SubmitResult submit_job(const ClientOptions& options,
                        const JobRequest& request) {
  const int max_attempts = options.retry.max_attempts > 0
                               ? options.retry.max_attempts
                               : 1;
  SubmitResult result;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    result = submit_once(options, request);
    result.attempts = attempt;
    if (result.status.ok() || attempt == max_attempts ||
        !result_is_transient(result))
      return result;
    const double backoff =
        exec::retry_backoff_ms(options.retry, options.retry_key, attempt);
    if (backoff > 0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(backoff * 1000)));
  }
  return result;
}

exec::Status ping_server(const ClientOptions& options, double wait_ms) {
  const double deadline = now_ms() + wait_ms;
  exec::Status last{exec::StatusCode::kUnavailable, "never attempted"};
  do {
    Socket sock;
    last = connect_unix(options, sock);
    if (last.ok()) {
      const double io_deadline = now_ms() + options.io_timeout_ms;
      last = write_all(sock.fd, encode_frame(FrameType::kPing, ""),
                       io_deadline);
      if (last.ok()) {
        FrameDecoder decoder;
        Frame frame;
        last = read_frame(sock.fd, decoder, frame, io_deadline);
        if (last.ok() && frame.type != FrameType::kPong)
          last = {exec::StatusCode::kInternal,
                  "ping answered with frame type " +
                      std::to_string(static_cast<int>(frame.type))};
      }
    }
    if (last.ok()) return last;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  } while (now_ms() < deadline);
  return last.with_context("ping " + options.socket_path);
}

#else  // !RDC_SERVE_POSIX

bool result_is_transient(const SubmitResult& result) {
  exec::JobOutcome outcome;
  outcome.status = result.status;
  outcome.crashed = result.transport_error;
  return exec::outcome_is_transient(outcome);
}

SubmitResult submit_job(const ClientOptions&, const JobRequest&) {
  SubmitResult result;
  result.attempts = 1;
  result.status = {exec::StatusCode::kUnavailable,
                   "rdcsynd client requires a POSIX socket layer"};
  return result;
}

exec::Status ping_server(const ClientOptions&, double) {
  return {exec::StatusCode::kUnavailable,
          "rdcsynd client requires a POSIX socket layer"};
}

#endif  // RDC_SERVE_POSIX

}  // namespace rdc::serve
