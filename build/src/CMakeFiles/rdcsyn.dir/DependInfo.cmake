
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aig/aig.cpp" "src/CMakeFiles/rdcsyn.dir/aig/aig.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/aig/aig.cpp.o.d"
  "/root/repo/src/aig/balance.cpp" "src/CMakeFiles/rdcsyn.dir/aig/balance.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/aig/balance.cpp.o.d"
  "/root/repo/src/aig/simulate.cpp" "src/CMakeFiles/rdcsyn.dir/aig/simulate.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/aig/simulate.cpp.o.d"
  "/root/repo/src/bdd/bdd.cpp" "src/CMakeFiles/rdcsyn.dir/bdd/bdd.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/bdd/bdd.cpp.o.d"
  "/root/repo/src/bdd/bdd_ops.cpp" "src/CMakeFiles/rdcsyn.dir/bdd/bdd_ops.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/bdd/bdd_ops.cpp.o.d"
  "/root/repo/src/bdd/reorder.cpp" "src/CMakeFiles/rdcsyn.dir/bdd/reorder.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/bdd/reorder.cpp.o.d"
  "/root/repo/src/benchdata/suite.cpp" "src/CMakeFiles/rdcsyn.dir/benchdata/suite.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/benchdata/suite.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/rdcsyn.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/rdcsyn.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/common/stats.cpp.o.d"
  "/root/repo/src/decomp/aig_eval.cpp" "src/CMakeFiles/rdcsyn.dir/decomp/aig_eval.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/decomp/aig_eval.cpp.o.d"
  "/root/repo/src/decomp/odc.cpp" "src/CMakeFiles/rdcsyn.dir/decomp/odc.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/decomp/odc.cpp.o.d"
  "/root/repo/src/decomp/renode.cpp" "src/CMakeFiles/rdcsyn.dir/decomp/renode.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/decomp/renode.cpp.o.d"
  "/root/repo/src/espresso/complement.cpp" "src/CMakeFiles/rdcsyn.dir/espresso/complement.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/espresso/complement.cpp.o.d"
  "/root/repo/src/espresso/espresso.cpp" "src/CMakeFiles/rdcsyn.dir/espresso/espresso.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/espresso/espresso.cpp.o.d"
  "/root/repo/src/espresso/exact.cpp" "src/CMakeFiles/rdcsyn.dir/espresso/exact.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/espresso/exact.cpp.o.d"
  "/root/repo/src/espresso/expand.cpp" "src/CMakeFiles/rdcsyn.dir/espresso/expand.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/espresso/expand.cpp.o.d"
  "/root/repo/src/espresso/irredundant.cpp" "src/CMakeFiles/rdcsyn.dir/espresso/irredundant.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/espresso/irredundant.cpp.o.d"
  "/root/repo/src/espresso/reduce.cpp" "src/CMakeFiles/rdcsyn.dir/espresso/reduce.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/espresso/reduce.cpp.o.d"
  "/root/repo/src/espresso/unate.cpp" "src/CMakeFiles/rdcsyn.dir/espresso/unate.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/espresso/unate.cpp.o.d"
  "/root/repo/src/flow/synthesis_flow.cpp" "src/CMakeFiles/rdcsyn.dir/flow/synthesis_flow.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/flow/synthesis_flow.cpp.o.d"
  "/root/repo/src/io/aiger.cpp" "src/CMakeFiles/rdcsyn.dir/io/aiger.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/io/aiger.cpp.o.d"
  "/root/repo/src/io/blif.cpp" "src/CMakeFiles/rdcsyn.dir/io/blif.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/io/blif.cpp.o.d"
  "/root/repo/src/io/blif_reader.cpp" "src/CMakeFiles/rdcsyn.dir/io/blif_reader.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/io/blif_reader.cpp.o.d"
  "/root/repo/src/io/testbench.cpp" "src/CMakeFiles/rdcsyn.dir/io/testbench.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/io/testbench.cpp.o.d"
  "/root/repo/src/io/verilog.cpp" "src/CMakeFiles/rdcsyn.dir/io/verilog.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/io/verilog.cpp.o.d"
  "/root/repo/src/mapper/cell_library.cpp" "src/CMakeFiles/rdcsyn.dir/mapper/cell_library.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/mapper/cell_library.cpp.o.d"
  "/root/repo/src/mapper/liberty.cpp" "src/CMakeFiles/rdcsyn.dir/mapper/liberty.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/mapper/liberty.cpp.o.d"
  "/root/repo/src/mapper/netlist.cpp" "src/CMakeFiles/rdcsyn.dir/mapper/netlist.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/mapper/netlist.cpp.o.d"
  "/root/repo/src/mapper/power.cpp" "src/CMakeFiles/rdcsyn.dir/mapper/power.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/mapper/power.cpp.o.d"
  "/root/repo/src/mapper/subject_graph.cpp" "src/CMakeFiles/rdcsyn.dir/mapper/subject_graph.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/mapper/subject_graph.cpp.o.d"
  "/root/repo/src/mapper/tree_map.cpp" "src/CMakeFiles/rdcsyn.dir/mapper/tree_map.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/mapper/tree_map.cpp.o.d"
  "/root/repo/src/mapper/unmap.cpp" "src/CMakeFiles/rdcsyn.dir/mapper/unmap.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/mapper/unmap.cpp.o.d"
  "/root/repo/src/pla/cover.cpp" "src/CMakeFiles/rdcsyn.dir/pla/cover.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/pla/cover.cpp.o.d"
  "/root/repo/src/pla/cube.cpp" "src/CMakeFiles/rdcsyn.dir/pla/cube.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/pla/cube.cpp.o.d"
  "/root/repo/src/pla/pla_io.cpp" "src/CMakeFiles/rdcsyn.dir/pla/pla_io.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/pla/pla_io.cpp.o.d"
  "/root/repo/src/reliability/assignment.cpp" "src/CMakeFiles/rdcsyn.dir/reliability/assignment.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/reliability/assignment.cpp.o.d"
  "/root/repo/src/reliability/complexity.cpp" "src/CMakeFiles/rdcsyn.dir/reliability/complexity.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/reliability/complexity.cpp.o.d"
  "/root/repo/src/reliability/error_rate.cpp" "src/CMakeFiles/rdcsyn.dir/reliability/error_rate.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/reliability/error_rate.cpp.o.d"
  "/root/repo/src/reliability/estimates.cpp" "src/CMakeFiles/rdcsyn.dir/reliability/estimates.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/reliability/estimates.cpp.o.d"
  "/root/repo/src/reliability/sampling.cpp" "src/CMakeFiles/rdcsyn.dir/reliability/sampling.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/reliability/sampling.cpp.o.d"
  "/root/repo/src/sat/cnf.cpp" "src/CMakeFiles/rdcsyn.dir/sat/cnf.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/sat/cnf.cpp.o.d"
  "/root/repo/src/sat/dimacs.cpp" "src/CMakeFiles/rdcsyn.dir/sat/dimacs.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/sat/dimacs.cpp.o.d"
  "/root/repo/src/sat/equivalence.cpp" "src/CMakeFiles/rdcsyn.dir/sat/equivalence.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/sat/equivalence.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/CMakeFiles/rdcsyn.dir/sat/solver.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/sat/solver.cpp.o.d"
  "/root/repo/src/sop/division.cpp" "src/CMakeFiles/rdcsyn.dir/sop/division.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/sop/division.cpp.o.d"
  "/root/repo/src/sop/extract.cpp" "src/CMakeFiles/rdcsyn.dir/sop/extract.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/sop/extract.cpp.o.d"
  "/root/repo/src/sop/factor.cpp" "src/CMakeFiles/rdcsyn.dir/sop/factor.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/sop/factor.cpp.o.d"
  "/root/repo/src/sop/kernel.cpp" "src/CMakeFiles/rdcsyn.dir/sop/kernel.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/sop/kernel.cpp.o.d"
  "/root/repo/src/synthetic/generator.cpp" "src/CMakeFiles/rdcsyn.dir/synthetic/generator.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/synthetic/generator.cpp.o.d"
  "/root/repo/src/tt/incomplete_spec.cpp" "src/CMakeFiles/rdcsyn.dir/tt/incomplete_spec.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/tt/incomplete_spec.cpp.o.d"
  "/root/repo/src/tt/neighbor_stats.cpp" "src/CMakeFiles/rdcsyn.dir/tt/neighbor_stats.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/tt/neighbor_stats.cpp.o.d"
  "/root/repo/src/tt/ternary_function.cpp" "src/CMakeFiles/rdcsyn.dir/tt/ternary_function.cpp.o" "gcc" "src/CMakeFiles/rdcsyn.dir/tt/ternary_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
