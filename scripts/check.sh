#!/usr/bin/env bash
# Local CI: the tier-1 configure/build/ctest line from ROADMAP.md, followed
# by an ASan+UBSan build of the unit tests to catch memory and UB bugs the
# release build hides (the word-parallel kernels and the thread pool are
# exactly the kind of code sanitizers pay off on).
#
# Usage: scripts/check.sh [--no-sanitizers]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

run_sanitizers=1
if [[ "${1:-}" == "--no-sanitizers" ]]; then
  run_sanitizers=0
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo
echo "== observability smoke: traced --json harness run =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
RDC_TRACE="$smoke_dir/trace.json" \
  ./build/bench/bench_table1 --json "$smoke_dir/report.json" > /dev/null
./build/tools/rdc_json_check "$smoke_dir/report.json" \
  schema suite git_rev date threads compiler rows counters
./build/tools/rdc_json_check "$smoke_dir/trace.json" traceEvents
RDC_TRACE=summary ./build/bench/bench_table1 > /dev/null 2> "$smoke_dir/summary.txt"
grep -q "rdc::obs" "$smoke_dir/summary.txt" || {
  echo "RDC_TRACE=summary produced no summary table" >&2
  exit 1
}

if [[ "$run_sanitizers" == "1" ]]; then
  echo
  echo "== ASan+UBSan build of the unit tests =="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-asan -j --target rdcsyn_tests
  (cd build-asan && ctest --output-on-failure -j)
fi

echo
echo "All checks passed."
