// Unate-recursive-paradigm primitives: tautology checking, binate variable
// selection, and cover containment tests.
//
// These are the kernels the ESPRESSO loop (expand / irredundant / reduce)
// is built from, following the classic formulation of Brayton et al.
#pragma once

#include <optional>

#include "pla/cover.hpp"

namespace rdc {

/// Per-variable polarity usage inside a cover.
struct VariableActivity {
  unsigned negative = 0;  ///< cubes with literal !x_j
  unsigned positive = 0;  ///< cubes with literal x_j
  bool binate() const { return negative > 0 && positive > 0; }
};

/// Computes the activity of variable j across the cover.
VariableActivity variable_activity(const Cover& cover, unsigned j);

/// Picks the most binate variable (maximizing min(neg, pos), ties by total
/// activity then index); returns nullopt if the cover is unate.
std::optional<unsigned> most_binate_variable(const Cover& cover);

/// True iff the cover is a tautology (covers every minterm).
bool is_tautology(const Cover& cover);

/// True iff cube `c` is covered by `cover` (i.e. cover cofactored against c
/// is a tautology).
bool cover_contains_cube(const Cover& cover, const Cube& c);

}  // namespace rdc
