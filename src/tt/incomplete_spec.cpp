#include "tt/incomplete_spec.hpp"

namespace rdc {

IncompleteSpec::IncompleteSpec(std::string name, unsigned num_inputs,
                               unsigned num_outputs)
    : name_(std::move(name)), num_inputs_(num_inputs) {
  outputs_.reserve(num_outputs);
  for (unsigned i = 0; i < num_outputs; ++i)
    outputs_.emplace_back(num_inputs);
}

double IncompleteSpec::dc_fraction() const {
  if (outputs_.empty()) return 0.0;
  const double total = static_cast<double>(num_minterms(num_inputs_)) *
                       static_cast<double>(outputs_.size());
  return static_cast<double>(total_dc_count()) / total;
}

std::uint64_t IncompleteSpec::total_dc_count() const {
  std::uint64_t total = 0;
  for (const auto& f : outputs_) total += f.dc_count();
  return total;
}

bool IncompleteSpec::fully_specified() const {
  for (const auto& f : outputs_)
    if (!f.fully_specified()) return false;
  return true;
}

}  // namespace rdc
