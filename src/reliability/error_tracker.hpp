// Incremental maintenance of reliability metrics across pipeline stages.
//
// The paper's assignment heuristics and the flow's analyze passes
// re-evaluate reliability after individual DC assignments — a usage pattern
// where full Θ(n·2^n) recomputation is pure waste: flipping the
// implementation value of one minterm m only toggles the propagation
// predicate of the 2n events inside m's 1-Hamming-ball. Two trackers
// exploit that locality:
//
//  * ErrorRateTracker maintains the exact propagating-event count of an
//    implementation against a fixed specification. It reconciles by
//    diffing a snapshot of the implementation's on-bits against the
//    current bits, so it needs no cooperation (no flip notifications)
//    from the passes that mutate the design: each update() costs O(n) per
//    flipped minterm, falling back to a full word-parallel resync when
//    the diff is large enough that recomputation is cheaper. Counts are
//    exact integers, so the resulting rate is bit-identical to
//    exact_error_rate at every step.
//
//  * NeighborhoodTracker generalizes the delta-update machinery that lived
//    inside ranking_assign_incremental: per-minterm NeighborCounts kept
//    current as DCs are assigned, each assignment updating only the n
//    adjacent counts.
//
// Invalidation contract (DESIGN.md §12): a tracker is bound to one spec's
// care sets and one implementation's storage layout (num_inputs, output
// count). It must be rebuilt — not updated — when the spec itself changes
// (a new Design, or Design::reset_working() replacing outputs wholesale);
// within one pipeline run the spec is immutable, so Design owns one
// tracker and reuses it across every produced(kCovers) stage.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "tt/incomplete_spec.hpp"
#include "tt/neighbor_stats.hpp"
#include "tt/ternary_function.hpp"

namespace rdc {

/// Maintains the exact error rate of a (fully specified) implementation
/// against the care sets of a fixed specification, reconciling by snapshot
/// diff instead of recomputing from scratch.
class ErrorRateTracker {
 public:
  ErrorRateTracker() = default;

  /// Binds the tracker to `spec`'s care sets. The first update() performs
  /// a full sync per output.
  explicit ErrorRateTracker(const IncompleteSpec& spec);

  bool bound() const { return bound_; }

  /// Brings the tracker in sync with `implementation` (same shape as the
  /// bound spec, every output fully specified) and returns the exact mean
  /// per-output error rate — bit-identical to
  /// exact_error_rate(implementation, spec). Outputs whose on-bits diff in
  /// more minterms than the word-parallel resync would touch words are
  /// recomputed wholesale; everything else is reconciled with O(n) work
  /// per flipped minterm.
  double update(const IncompleteSpec& implementation);

  /// The rate computed by the last update().
  double rate() const { return rate_; }

 private:
  struct OutputState {
    BitVec care;                    ///< spec care set (fixed)
    BitVec on;                      ///< snapshot of implementation on-bits
    std::uint64_t propagating = 0;  ///< events propagating through snapshot
    bool have_snapshot = false;
  };

  void full_sync(OutputState& state, const BitVec& on);
  void reconcile(OutputState& state, const BitVec& on);

  unsigned num_inputs_ = 0;
  bool bound_ = false;
  double rate_ = 0.0;
  std::vector<OutputState> outputs_;
};

/// Per-minterm neighbor counts kept current as DC minterms get assigned —
/// the incremental core of ranking_assign_incremental, reusable by any
/// pass that assigns DCs one at a time.
class NeighborhoodTracker {
 public:
  /// Builds the counts from scratch (one word-parallel NeighborTable).
  explicit NeighborhoodTracker(const TernaryTruthTable& f);

  /// Seeds the counts from an already-built table of the same function,
  /// skipping the rebuild (the pass-level caches hand these in).
  NeighborhoodTracker(const TernaryTruthTable& f, const NeighborTable& table);

  const NeighborCounts& at(std::uint32_t minterm) const {
    return counts_[minterm];
  }

  /// |on-neighbors - off-neighbors| — the Fig. 3 ranking weight.
  unsigned majority_weight(std::uint32_t minterm) const {
    const NeighborCounts& c = counts_[minterm];
    return c.on > c.off ? unsigned{c.on} - c.off : unsigned{c.off} - c.on;
  }

  bool majority_on(std::uint32_t minterm) const {
    const NeighborCounts& c = counts_[minterm];
    return c.on > c.off;
  }

  /// Records that DC minterm `minterm` was assigned (to the on-set iff
  /// `to_on`): each of its n neighbors trades one DC neighbor for an
  /// on/off neighbor. Calls `on_neighbor(nbr)` after updating each count.
  template <typename Fn>
  void assign(std::uint32_t minterm, bool to_on, Fn&& on_neighbor) {
    for (unsigned j = 0; j < num_inputs_; ++j) {
      const std::uint32_t nbr = flip_bit(minterm, j);
      NeighborCounts& c = counts_[nbr];
      --c.dc;
      if (to_on)
        ++c.on;
      else
        ++c.off;
      on_neighbor(nbr);
    }
  }

  unsigned num_inputs() const { return num_inputs_; }

 private:
  unsigned num_inputs_ = 0;
  std::vector<NeighborCounts> counts_;
};

}  // namespace rdc
