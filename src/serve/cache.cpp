#include "serve/cache.hpp"

#include "obs/counters.hpp"

namespace rdc::serve {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t hash) {
  return fnv1a(s.data(), s.size(), hash);
}

}  // namespace

std::uint64_t result_cache_key(std::string_view spec_bytes,
                               std::string_view canonical_pipeline,
                               std::uint64_t options_fingerprint) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  hash = fnv1a(spec_bytes, hash);
  hash = fnv1a("\x1f", hash);  // field separator: "ab"+"c" != "a"+"bc"
  hash = fnv1a(canonical_pipeline, hash);
  hash = fnv1a("\x1f", hash);
  hash = fnv1a(&options_fingerprint, sizeof options_fingerprint, hash);
  return hash;
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    obs::count(obs::Counter::kServeCacheMiss);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  obs::count(obs::Counter::kServeCacheHit);
  return it->second->json;
}

void ResultCache::insert(std::uint64_t key, std::string report_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (report_json.size() + kEntryOverheadBytes > max_bytes_) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= entry_bytes(*it->second);
    it->second->json = std::move(report_json);
    bytes_ += entry_bytes(*it->second);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front({key, std::move(report_json)});
    index_[key] = lru_.begin();
    bytes_ += entry_bytes(lru_.front());
  }
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= entry_bytes(victim);
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    obs::count(obs::Counter::kServeCacheEvict);
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, evictions_, bytes_,
          static_cast<std::uint64_t>(lru_.size())};
}

}  // namespace rdc::serve
