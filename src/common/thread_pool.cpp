#include "common/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "exec/budget.hpp"
#include "exec/status.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace rdc {
namespace {

/// True on threads currently executing a parallel_for body; nested calls
/// run inline instead of re-entering the pool.
thread_local bool tls_in_parallel_region = false;

void run_inline(std::uint64_t begin, std::uint64_t end,
                const std::function<void(std::uint64_t)>& fn) {
  for (std::uint64_t i = begin; i < end; ++i) {
    exec::checkpoint();  // serial path: budget trip stops before index i
    fn(i);
  }
}

/// One parallel_for invocation. Workers each hold their own shared_ptr, so
/// a straggler waking after the job completed sees exhausted counters and
/// exits without ever touching a newer job's state.
struct Job {
  std::uint64_t end = 0;
  const std::function<void(std::uint64_t)>* fn = nullptr;
  exec::ExecBudget* budget = nullptr;  ///< submitter's budget, or null
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> pending{0};
  /// Set on the first throw or budget trip; claimed indices finish, but no
  /// new index starts once this is observed.
  std::atomic<bool> stop{false};

  std::mutex done_mutex;
  std::condition_variable done;
  std::exception_ptr first_error;
  std::uint64_t first_error_index = UINT64_MAX;
  bool budget_stopped = false;

  /// Pulls indices until the job is exhausted or stopped. The owning
  /// parallel_for call outlives every index (it waits on `pending`), so
  /// `*fn` stays valid for the whole loop.
  ///
  /// Determinism of the propagated exception: `next.fetch_add` hands out
  /// indices in increasing order, so when index j throws and raises `stop`,
  /// every index i < j was already claimed — it runs to completion and, if
  /// it throws too, records under `i < first_error_index`. The lowest
  /// throwing index therefore always wins, at any thread count.
  void work() {
    tls_in_parallel_region = true;
    exec::BudgetScope scope(budget);  // propagate the submitter's budget
    // Busy time is attributed to the executing thread's counter shard, so
    // the summary's pool-utilization table shows per-worker load.
    const bool timed = obs::counters_enabled();
    const std::uint64_t entered_ns = timed ? obs::trace_now_ns() : 0;
    std::uint64_t executed = 0;
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      bool run = !stop.load(std::memory_order_acquire);
      if (!run) {
        // Claimed before the stop raced in: indices below the recorded
        // error still run (they may hold the true lowest error, keeping
        // the propagated exception deterministic); budget trips and
        // indices above the error stay cancelled.
        std::lock_guard<std::mutex> lock(done_mutex);
        run = !budget_stopped && i < first_error_index;
      }
      if (run && budget != nullptr && !budget->check().ok()) {
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          budget_stopped = true;
        }
        stop.store(true, std::memory_order_release);
        run = false;
      }
      if (run) {
        ++executed;
        try {
          (*fn)(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(done_mutex);
            if (i < first_error_index) {
              first_error_index = i;
              first_error = std::current_exception();
            }
          }
          stop.store(true, std::memory_order_release);
        }
      }
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done.notify_all();
      }
    }
    // Per-worker attribution only: the deterministic kPoolTasks total is
    // counted by parallel_for itself, because a straggler thread can reach
    // this point after the owning parallel_for (and even the process's
    // report writer) has moved on.
    if (executed > 0) {
      obs::count(obs::Counter::kPoolWorkerTasks, executed);
      if (timed)
        obs::count(obs::Counter::kPoolBusyNs,
                   obs::trace_now_ns() - entered_ns);
    }
    tls_in_parallel_region = false;
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_ready;
  bool shutting_down = false;
  std::uint64_t generation = 0;
  std::shared_ptr<Job> current;

  void worker_loop(unsigned worker_index) {
    obs::set_thread_name("pool-worker-" + std::to_string(worker_index));
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] {
          return shutting_down || generation != seen_generation;
        });
        if (shutting_down) return;
        seen_generation = generation;
        job = current;
      }
      job->work();
    }
  }
};

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  num_threads_ = num_threads;
  if (num_threads_ <= 1) return;
  impl_ = new Impl;
  impl_->workers.reserve(num_threads_ - 1);
  for (unsigned t = 0; t + 1 < num_threads_; ++t)
    impl_->workers.emplace_back([this, t] { impl_->worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::uint64_t begin, std::uint64_t end,
                              const std::function<void(std::uint64_t)>& fn) {
  if (begin >= end) return;
  // Job/task counts are index arithmetic, identical at any thread count;
  // only kPoolBusyNs (measured in Job::work) is scheduling-dependent.
  obs::count(obs::Counter::kPoolJobs);
  obs::count(obs::Counter::kPoolTasks, end - begin);
  obs::observe(obs::Histo::kPoolTasksPerJob, end - begin);
  if (!impl_ || tls_in_parallel_region || end - begin == 1) {
    obs::count(obs::Counter::kPoolWorkerTasks, end - begin);
    run_inline(begin, end, fn);
    return;
  }
  RDC_SPAN("pool.parallel_for");
  auto job = std::make_shared<Job>();
  job->end = end;
  job->fn = &fn;
  job->budget = exec::current_budget();
  job->next.store(begin, std::memory_order_relaxed);
  job->pending.store(end - begin, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current = job;
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();
  job->work();  // the calling thread is one of the pool's threads
  std::unique_lock<std::mutex> lock(job->done_mutex);
  job->done.wait(lock, [&] {
    return job->pending.load(std::memory_order_acquire) == 0;
  });
  if (job->first_error) std::rethrow_exception(job->first_error);
  if (job->budget_stopped)
    throw exec::StatusError(
        job->budget->check().with_context("parallel_for"));
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const char* env = std::getenv("RDC_THREADS");
    if (env == nullptr || *env == '\0') return 0u;
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed > 0 ? static_cast<unsigned>(parsed) : 0u;
  }());
  return pool;
}

}  // namespace rdc
