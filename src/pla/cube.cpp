#include "pla/cube.hpp"

#include <stdexcept>

namespace rdc {

Cube Cube::parse(const std::string& text) {
  if (text.size() > 20)
    throw std::invalid_argument("cube wider than 20 variables: " + text);
  Cube c;
  for (unsigned j = 0; j < text.size(); ++j) {
    switch (text[j]) {
      case '0':
        c.mask0 |= 1u << j;
        break;
      case '1':
        c.mask1 |= 1u << j;
        break;
      case '-':
      case '2':
        c.mask0 |= 1u << j;
        c.mask1 |= 1u << j;
        break;
      default:
        throw std::invalid_argument(std::string("bad cube character '") +
                                    text[j] + "' in \"" + text + "\"");
    }
  }
  return c;
}

std::string Cube::to_string(unsigned n) const {
  std::string s;
  s.reserve(n);
  for (unsigned j = 0; j < n; ++j) {
    const bool z = test_bit(mask0, j);
    const bool o = test_bit(mask1, j);
    if (z && o)
      s.push_back('-');
    else if (o)
      s.push_back('1');
    else if (z)
      s.push_back('0');
    else
      s.push_back('@');  // empty part — never produced by valid covers
  }
  return s;
}

}  // namespace rdc
