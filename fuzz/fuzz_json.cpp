// Fuzz target for the observability JSON parser (DESIGN.md §10). parse_json
// reports errors by return value, so any exception at all is a bug, as are
// crashes (e.g. the deep-nesting stack overflow the depth cap guards
// against). Regression corpus: fuzz/corpus/json/.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "obs/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::string error;
  (void)rdc::obs::parse_json(text, &error);
  return 0;
}
