#include "reliability/complexity.hpp"

#include "common/bitvec.hpp"
#include "obs/counters.hpp"

namespace rdc {

std::uint64_t same_phase_pairs(const TernaryTruthTable& f) {
  // C^f counts ordered distance-1 pairs with equal phase. Per pin j the
  // pairs whose members both lie in a set S are the set bits of
  // S & neighbor_j(S); summing over the three sets and all pins counts
  // every ordered pair exactly once.
  const unsigned n = f.num_inputs();
  const BitVec& on = f.on_bits();
  const BitVec& dc = f.dc_bits();
  const BitVec off = f.off_bits();
  std::uint64_t same = 0;
  for (unsigned j = 0; j < n; ++j) {
    same += popcount_and(on, on.neighbor_shift(j));
    same += popcount_and(dc, dc.neighbor_shift(j));
    same += popcount_and(off, off.neighbor_shift(j));
  }
  return same;
}

double complexity_factor(const TernaryTruthTable& f) {
  const unsigned n = f.num_inputs();
  if (n == 0) return 0.0;
  obs::count(obs::Counter::kComplexityEvals);
  return static_cast<double>(same_phase_pairs(f)) /
         (static_cast<double>(n) * static_cast<double>(f.size()));
}

double complexity_factor_scalar(const TernaryTruthTable& f) {
  const unsigned n = f.num_inputs();
  if (n == 0) return 0.0;
  const NeighborTable neighbors = NeighborTable::build_scalar(f);
  std::uint64_t same = 0;
  for (std::uint32_t m = 0; m < f.size(); ++m)
    same += neighbors.same_phase_neighbors(f, m);
  return static_cast<double>(same) /
         (static_cast<double>(n) * static_cast<double>(f.size()));
}

double complexity_factor(const IncompleteSpec& spec) {
  if (spec.num_outputs() == 0) return 0.0;
  double sum = 0.0;
  for (const auto& f : spec.outputs()) sum += complexity_factor(f);
  return sum / spec.num_outputs();
}

double expected_complexity_factor(const TernaryTruthTable& f) {
  const double f0 = f.f0();
  const double f1 = f.f1();
  const double fdc = f.f_dc();
  return f0 * f0 + f1 * f1 + fdc * fdc;
}

double expected_complexity_factor(const IncompleteSpec& spec) {
  if (spec.num_outputs() == 0) return 0.0;
  double sum = 0.0;
  for (const auto& f : spec.outputs()) sum += expected_complexity_factor(f);
  return sum / spec.num_outputs();
}

double local_complexity_factor(const TernaryTruthTable& f,
                               const NeighborTable& neighbors,
                               std::uint32_t minterm) {
  const unsigned n = f.num_inputs();
  std::uint64_t same = 0;
  for (unsigned j = 0; j < n; ++j) {
    const std::uint32_t nbr = flip_bit(minterm, j);
    same += neighbors.same_phase_neighbors(f, nbr);
  }
  return static_cast<double>(same) / (static_cast<double>(n) * n);
}

double local_complexity_factor(const TernaryTruthTable& f,
                               std::uint32_t minterm) {
  const NeighborTable neighbors(f);
  return local_complexity_factor(f, neighbors, minterm);
}

}  // namespace rdc
