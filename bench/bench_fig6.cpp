// Reproduces Figure 6 of the paper: normalized area versus normalized error
// rate trajectories for families of 11-input, 11-output synthetic circuits
// (DC-set = 60% of minterms), one family per complexity factor, as the
// ranking-assigned fraction sweeps from 0 to 1.
//
// Expected trends (paper): high-C^f families show the largest error-rate
// range and the largest area overheads; low-C^f families achieve
// reliability gains with small or negative area overhead.
//
// Each (family, instance) circuit is generated from its own derived seed
// and fanned out over the pool (RDC_THREADS workers), so the sweep is
// deterministic at any thread count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "synthetic/generator.hpp"

namespace {

/// Normalized (area, error) per fraction, for one generated circuit.
struct Trajectory {
  std::vector<double> area;
  std::vector<double> error;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rdc;
  bench::Options options_cli;
  int exit_code = 0;
  if (!bench::parse_args(argc, argv, options_cli, exit_code)) return exit_code;

  bench::heading(
      "Figure 6: Area vs error rate for synthetic benchmark families "
      "(11-in, 11-out, 60% DC)");

  const std::vector<double> families{0.35, 0.45, 0.55, 0.65, 0.80};
  const std::vector<double> fractions{0.0, 0.25, 0.5, 0.75, 1.0};
  constexpr int kFunctionsPerFamily = 4;  // paper used 10; 4 keeps runtime low
  constexpr unsigned kInputs = 11;
  constexpr unsigned kOutputs = 11;
  constexpr std::uint64_t kBaseSeed = 0xF165;

  const bench::GuardedRows<Trajectory> runs = bench::guarded_rows<Trajectory>(
      options_cli, families.size() * kFunctionsPerFamily,
      [&](std::size_t task) {
        const double family_cf = families[task / kFunctionsPerFamily];
        SyntheticOptions options = options_for_target(kInputs, 0.6, family_cf);
        options.num_outputs = kOutputs;
        options.tolerance = 0.01;
        Rng rng(kBaseSeed + task);
        const IncompleteSpec spec = generate_spec(
            "fig6_cf" + std::to_string(family_cf), options, rng);
        const FlowResult baseline = run_flow(spec, DcPolicy::kConventional);
        Trajectory t;
        for (const double fraction : fractions) {
          FlowOptions fo;
          fo.ranking_fraction = fraction;
          const FlowResult r = run_flow(spec, DcPolicy::kRankingFraction, fo);
          t.area.push_back(bench::normalized(baseline.stats.area,
                                             r.stats.area));
          t.error.push_back(bench::normalized(baseline.error_rate,
                                              r.error_rate));
        }
        return t;
      });

  obs::RunReport report("fig6");
  report.meta().set("functions_per_family", kFunctionsPerFamily);
  for (std::size_t fam = 0; fam < families.size(); ++fam) {
    std::printf("\nFamily C^f = %.2f\n", families[fam]);
    std::printf("%8s %12s %12s\n", "fraction", "norm. area", "norm. error");
    int ok_instances = 0;
    for (int k = 0; k < kFunctionsPerFamily; ++k)
      if (runs.ok(fam * kFunctionsPerFamily + k)) ++ok_instances;
    if (ok_instances == 0) {
      char label[32];
      std::snprintf(label, sizeof label, "family_cf_%.2f", families[fam]);
      bench::print_error_row(label,
                             runs.statuses[fam * kFunctionsPerFamily]);
      bench::add_error_row(report, label,
                           runs.statuses[fam * kFunctionsPerFamily]);
      continue;
    }
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      double area_sum = 0.0;
      double error_sum = 0.0;
      for (int k = 0; k < kFunctionsPerFamily; ++k) {
        const std::size_t task = fam * kFunctionsPerFamily + k;
        if (!runs.ok(task)) continue;
        const Trajectory& t = runs.rows[task];
        area_sum += t.area[i];
        error_sum += t.error[i];
      }
      std::printf("%8.2f %12.3f %12.3f\n", fractions[i],
                  area_sum / ok_instances, error_sum / ok_instances);
      obs::Record& r = report.add_row();
      r.set("family_cf", families[fam]);
      r.set("fraction", fractions[i]);
      r.set("instances_ok", ok_instances);
      r.set("normalized_area", area_sum / ok_instances);
      r.set("normalized_error", error_sum / ok_instances);
    }
  }
  return bench::finish(options_cli, report);
}
