// Precomputed 1-Hamming-distance neighborhood statistics.
//
// Every algorithm in the paper is driven by the phases of a minterm's n
// neighbors: ranking weights (Fig. 3), complexity factors (Sec. 2.2/4),
// border counts and error bounds (Sec. 5). NeighborTable computes all
// per-minterm neighbor counts in one O(n * 2^n) pass and serves them in O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "tt/ternary_function.hpp"

namespace rdc {

/// Per-minterm neighbor phase counts for one ternary function.
struct NeighborCounts {
  std::uint8_t on = 0;   ///< neighbors in the on-set
  std::uint8_t off = 0;  ///< neighbors in the off-set
  std::uint8_t dc = 0;   ///< neighbors in the DC-set
};

class NeighborTable {
 public:
  explicit NeighborTable(const TernaryTruthTable& f);

  const NeighborCounts& at(std::uint32_t minterm) const {
    return counts_[minterm];
  }

  unsigned num_inputs() const { return num_inputs_; }

  /// Number of neighbors of `minterm` that share its phase in `f`.
  /// (The summand of the complexity factor definition.)
  unsigned same_phase_neighbors(const TernaryTruthTable& f,
                                std::uint32_t minterm) const;

 private:
  unsigned num_inputs_;
  std::vector<NeighborCounts> counts_;
};

}  // namespace rdc
