# Empty dependencies file for bench_second_opinion.
# This may be replaced when dependencies are built.
