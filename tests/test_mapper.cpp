// Tests for the cell library, pattern matching, tree mapping, netlist
// analysis and power estimation.
#include <gtest/gtest.h>

#include "aig/simulate.hpp"
#include "common/rng.hpp"
#include "espresso/espresso.hpp"
#include "mapper/cell_library.hpp"
#include "mapper/netlist.hpp"
#include "mapper/power.hpp"
#include "mapper/subject_graph.hpp"
#include "mapper/tree_map.hpp"
#include "sop/factor.hpp"

namespace rdc {
namespace {

Aig random_aig(unsigned n, Rng& rng) {
  TernaryTruthTable f(n);
  for (std::uint32_t m = 0; m < f.size(); ++m)
    f.set_phase(m, rng.flip(0.45) ? Phase::kOne : Phase::kZero);
  Aig aig(n);
  aig.add_output(aig.build(factor(minimize(f))));
  return aig;
}

TEST(CellLibrary, EvaluateAllKinds) {
  const bool t = true, f = false;
  {
    const bool in[] = {t};
    EXPECT_FALSE(evaluate_cell(CellKind::kInv, {in, 1}));
    EXPECT_TRUE(evaluate_cell(CellKind::kBuf, {in, 1}));
  }
  {
    const bool in[] = {t, f};
    EXPECT_FALSE(evaluate_cell(CellKind::kAnd2, {in, 2}));
    EXPECT_TRUE(evaluate_cell(CellKind::kNand2, {in, 2}));
    EXPECT_TRUE(evaluate_cell(CellKind::kOr2, {in, 2}));
    EXPECT_FALSE(evaluate_cell(CellKind::kNor2, {in, 2}));
    EXPECT_TRUE(evaluate_cell(CellKind::kXor2, {in, 2}));
    EXPECT_FALSE(evaluate_cell(CellKind::kXnor2, {in, 2}));
  }
  {
    const bool in[] = {t, t, f};
    EXPECT_FALSE(evaluate_cell(CellKind::kAoi21, {in, 3}));   // ab+c = 1
    EXPECT_TRUE(evaluate_cell(CellKind::kOai21, {in, 3}));    // (a+b)c = 0
  }
  {
    const bool in[] = {t, f, f, t};
    EXPECT_TRUE(evaluate_cell(CellKind::kAoi22, {in, 4}));   // ab+cd = 0
    EXPECT_FALSE(evaluate_cell(CellKind::kOai22, {in, 4}));  // (a+b)(c+d)=1
  }
  EXPECT_FALSE(evaluate_cell(CellKind::kTie0, {}));
  EXPECT_TRUE(evaluate_cell(CellKind::kTie1, {}));
}

TEST(CellLibrary, Generic70HasAllKinds) {
  const CellLibrary& lib = CellLibrary::generic70();
  EXPECT_EQ(lib.cell(CellKind::kInv).name, "INVX1");
  EXPECT_EQ(lib.cell(CellKind::kNand2).num_inputs, 2u);
  EXPECT_GT(lib.cell(CellKind::kXor2).area, lib.cell(CellKind::kInv).area);
  EXPECT_GT(lib.nominal_load(), 0.0);
}

TEST(Matches, SimpleAndNode) {
  Aig aig(2);
  const std::uint32_t x =
      aig.make_and(aig.input_literal(0), aig.input_literal(1));
  aig.add_output(x);
  const auto matches =
      enumerate_matches(aig, aiglit::node_of(x), aig.fanout_counts());
  bool has_and2 = false, has_nand2 = false, has_nor2 = false;
  for (const Match& m : matches) {
    if (m.kind == CellKind::kAnd2 && !m.output_negated) has_and2 = true;
    if (m.kind == CellKind::kNand2 && m.output_negated) has_nand2 = true;
    if (m.kind == CellKind::kNor2 && !m.output_negated) has_nor2 = true;
  }
  EXPECT_TRUE(has_and2);
  EXPECT_TRUE(has_nand2);
  EXPECT_TRUE(has_nor2);
}

TEST(Matches, XorShapeDetected) {
  Aig aig(2);
  const std::uint32_t x =
      aig.make_xor(aig.input_literal(0), aig.input_literal(1));
  aig.add_output(x);
  // x is complemented; the XOR structure sits at its node.
  const auto matches =
      enumerate_matches(aig, aiglit::node_of(x), aig.fanout_counts());
  bool has_xor = false;
  for (const Match& m : matches)
    if (m.kind == CellKind::kXor2 || m.kind == CellKind::kXnor2)
      has_xor = true;
  EXPECT_TRUE(has_xor);
}

TEST(Matches, FanoutBlocksAbsorption) {
  Aig aig(3);
  const std::uint32_t inner =
      aig.make_and(aig.input_literal(0), aig.input_literal(1));
  const std::uint32_t outer = aig.make_and(inner, aig.input_literal(2));
  aig.add_output(outer);
  aig.add_output(inner);  // inner now multi-fanout
  const auto matches =
      enumerate_matches(aig, aiglit::node_of(outer), aig.fanout_counts());
  for (const Match& m : matches)
    EXPECT_LE(m.leaves.size(), 2u);  // no AND3: inner cannot be absorbed
}

TEST(Netlist, AddGateAndTopology) {
  Netlist nl(2);
  const std::uint32_t inv = nl.add_gate(CellKind::kInv, {nl.input_net(0)});
  const std::uint32_t g = nl.add_gate(CellKind::kAnd2, {inv, nl.input_net(1)});
  nl.add_output(g);
  EXPECT_EQ(nl.gate_count(), 2u);
  EXPECT_EQ(nl.num_nets(), 4u);
  // !x0 & x1
  EXPECT_TRUE(nl.evaluate(0b10).at(0));
  EXPECT_FALSE(nl.evaluate(0b01).at(0));
  EXPECT_THROW(nl.add_gate(CellKind::kInv, {99}), std::out_of_range);
}

TEST(Netlist, TimingIsMonotonicInDepth) {
  const CellLibrary& lib = CellLibrary::generic70();
  Netlist shallow(2);
  shallow.add_output(
      shallow.add_gate(CellKind::kAnd2,
                       {shallow.input_net(0), shallow.input_net(1)}));
  Netlist deep(2);
  std::uint32_t net = deep.add_gate(
      CellKind::kAnd2, {deep.input_net(0), deep.input_net(1)});
  for (int i = 0; i < 3; ++i) net = deep.add_gate(CellKind::kInv, {net});
  deep.add_output(net);
  EXPECT_GT(deep.critical_delay(lib), shallow.critical_delay(lib));
}

TEST(TreeMap, SingleGateFunctions) {
  Aig aig(2);
  aig.add_output(aig.make_and(aig.input_literal(0), aig.input_literal(1)));
  const Netlist nl = map_aig(aig, CellLibrary::generic70());
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.output_table(0), AigSimulator(aig).output_table(0));
}

TEST(TreeMap, ConstantAndPassthroughOutputs) {
  Aig aig(2);
  aig.add_output(aiglit::kFalse);
  aig.add_output(aiglit::kTrue);
  aig.add_output(aig.input_literal(1));
  const Netlist nl = map_aig(aig, CellLibrary::generic70());
  for (std::uint32_t m = 0; m < 4; ++m) {
    const auto out = nl.evaluate(m);
    EXPECT_FALSE(out.at(0));
    EXPECT_TRUE(out.at(1));
    EXPECT_EQ(out.at(2), (m & 2) != 0);
  }
}

TEST(TreeMap, InvertedOutput) {
  Aig aig(2);
  aig.add_output(
      aiglit::negate(aig.make_and(aig.input_literal(0), aig.input_literal(1))));
  const Netlist nl = map_aig(aig, CellLibrary::generic70());
  // Best implementation is a single NAND2.
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.gates()[0].kind, CellKind::kNand2);
}

TEST(TreeMap, RandomFunctionsAreEquivalent) {
  Rng rng(163);
  for (int trial = 0; trial < 15; ++trial) {
    const unsigned n = 4 + static_cast<unsigned>(rng.below(3));
    const Aig aig = random_aig(n, rng);
    for (const MapObjective obj : {MapObjective::kArea, MapObjective::kDelay}) {
      const Netlist nl = map_aig(aig, CellLibrary::generic70(), {obj});
      EXPECT_EQ(nl.output_table(0), AigSimulator(aig).output_table(0))
          << "trial " << trial;
    }
  }
}

TEST(TreeMap, MultiOutputSharing) {
  Aig aig(3);
  const std::uint32_t shared =
      aig.make_and(aig.input_literal(0), aig.input_literal(1));
  aig.add_output(aig.make_and(shared, aig.input_literal(2)));
  aig.add_output(aiglit::negate(shared));
  const Netlist nl = map_aig(aig, CellLibrary::generic70());
  const AigSimulator sim(aig);
  EXPECT_EQ(nl.output_table(0), sim.output_table(0));
  EXPECT_EQ(nl.output_table(1), sim.output_table(1));
}

TEST(TreeMap, DelayModeNoWorseThanAreaModeInDelay) {
  Rng rng(167);
  int delay_wins = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Aig aig = random_aig(6, rng);
    const CellLibrary& lib = CellLibrary::generic70();
    const double d_area =
        map_aig(aig, lib, {MapObjective::kArea}).critical_delay(lib);
    const double d_delay =
        map_aig(aig, lib, {MapObjective::kDelay}).critical_delay(lib);
    if (d_delay <= d_area + 1e-9) ++delay_wins;
  }
  // The DP uses estimated loads, so exact dominance is not guaranteed, but
  // it should hold in the large majority of cases.
  EXPECT_GE(delay_wins, 7);
}

TEST(Power, ProbabilitiesExact) {
  Netlist nl(2);
  const std::uint32_t g =
      nl.add_gate(CellKind::kAnd2, {nl.input_net(0), nl.input_net(1)});
  nl.add_output(g);
  const auto p = net_probabilities(nl);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[g], 0.25);
}

TEST(Power, ConstantNetsDontSwitch) {
  Netlist nl(1);
  const std::uint32_t t = nl.add_gate(CellKind::kTie1, {});
  nl.add_output(t);
  const PowerReport report = estimate_power(nl, CellLibrary::generic70());
  EXPECT_DOUBLE_EQ(report.dynamic_uw, 0.0);
  EXPECT_GT(report.leakage_nw, 0.0);
}

TEST(Power, MoreGatesMorePower) {
  Rng rng(173);
  const Aig small = random_aig(4, rng);
  const CellLibrary& lib = CellLibrary::generic70();
  const Netlist nl = map_aig(small, lib);
  const NetlistStats stats = analyze_netlist(nl, lib);
  EXPECT_EQ(stats.gates, nl.gate_count());
  EXPECT_GT(stats.area, 0.0);
  EXPECT_GT(stats.delay_ps, 0.0);
  EXPECT_GT(stats.power_uw, 0.0);
}

}  // namespace
}  // namespace rdc
