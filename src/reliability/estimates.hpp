// Analytical min-max reliability estimates (Section 5 of the paper).
//
// Two estimators for the achievable [min, max] error-rate interval of an
// incompletely specified function, both avoiding per-minterm enumeration:
//
//  * Signal-probability-based: models the neighbor-sum Y_i of a minterm as a
//    Gaussian with moments derived from (f0, f1, fDC) and evaluates
//    E[min/max((n-Y)/2, (n+Y)/2)] in closed form.
//  * Border-based: uses the counts of 0-, 1- and DC-borders (pairs of
//    1-Hamming-distance minterms of different phase) and a Poisson model of
//    a DC minterm's on-set-neighbor count.
//
// All results are rates on the same n * 2^n scale as error_rate.hpp, so they
// are directly comparable with the exact bounds (Table 3 of the paper).
#pragma once

#include <cstdint>

#include "tt/incomplete_spec.hpp"
#include "tt/ternary_function.hpp"

namespace rdc {

/// Ordered-pair border counts b0, b1, bDC of Section 5.
struct BorderCounts {
  std::uint64_t b0 = 0;   ///< (off-set, not-off-set) neighbor pairs
  std::uint64_t b1 = 0;   ///< (on-set, not-on-set) neighbor pairs
  std::uint64_t bdc = 0;  ///< (DC-set, not-DC-set) neighbor pairs
};

/// Exact border counts by truth-table scan (O(n * 2^n)).
BorderCounts count_borders(const TernaryTruthTable& f);

/// An estimated [min, max] error-rate interval.
struct EstimatedBounds {
  double min = 0.0;
  double max = 0.0;
};

/// Signal-probability (Gaussian) estimate for one output.
EstimatedBounds signal_probability_bounds(const TernaryTruthTable& f);

/// Border-count (Poisson) estimate for one output.
EstimatedBounds border_bounds(const TernaryTruthTable& f);

/// Mean-across-outputs versions for multi-output specs.
EstimatedBounds signal_probability_bounds(const IncompleteSpec& spec);
EstimatedBounds border_bounds(const IncompleteSpec& spec);

/// Count-based entry points: the same estimators fed from aggregate
/// statistics instead of a truth table. This is the scalable path — signal
/// probabilities and border counts are computable symbolically (BDD
/// sat-counts, see bdd/bdd_ops.hpp) for functions far beyond the 20-input
/// truth-table limit.
EstimatedBounds signal_probability_bounds_from_stats(unsigned num_inputs,
                                                     double f0, double f1,
                                                     double fdc);
EstimatedBounds border_bounds_from_stats(unsigned num_inputs, double f0,
                                         double f1, double fdc,
                                         const BorderCounts& borders);

}  // namespace rdc
