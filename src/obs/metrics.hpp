// Live telemetry: a registry of typed gauges layered over the sharded
// counters/histograms, point-in-time snapshots serialized as
// byte-deterministic rdc.metrics.v1 JSON or Prometheus text exposition,
// and a background snapshotter thread for continuous exposition.
//
// The existing obs counters/histograms are monotonic work accumulators;
// gauges add the "current level" dimension (resident set size, CPU time,
// queue depths). A gauge is either *pushed* (set_gauge stores the latest
// value) or *pulled* (a callback sampled at snapshot time); the built-in
// process sampler registers pull gauges for RSS, VM size, user/system CPU
// seconds, and minor/major page faults from /proc/self/statm + getrusage.
//
// Snapshot semantics: MetricsRegistry::snapshot() captures every gauge,
// counter, and histogram at one point in time into a plain-data Snapshot.
// Serialization is a pure function of that captured state — two to_json()
// calls on one Snapshot are byte-identical, the gauge/counter/histogram
// body for a given process state is byte-identical across RDC_THREADS,
// and the run-varying context (`seq`, `ts`, `uptime_ms`) is confined to
// the documented header keys, which is what "deterministic modulo
// timestamps" means for this schema.
//
// Continuous exposition: RDC_METRICS=<path>[:interval_ms] starts a
// background thread writing a fresh snapshot to <path> every interval
// (default 1000 ms; 0 = single snapshot at process exit). Writes go to
// <path>.tmp followed by an atomic rename, so a reader (or a crash) never
// observes a torn document; the final snapshot on shutdown flushes
// whatever the last interval missed. A path ending in ".prom" switches
// the format to Prometheus text exposition.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/counters.hpp"

namespace rdc::obs {

/// Point-in-time capture of the whole metrics surface. Plain data;
/// serializers are const and deterministic.
struct Snapshot {
  struct Gauge {
    std::string name;  ///< snake.case, like counter names
    std::string help;
    std::string unit;  ///< "bytes", "seconds", "count", ...
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    HistoData data;
  };

  std::uint64_t seq = 0;      ///< snapshotter write index (0 = manual)
  std::string ts;             ///< ISO 8601 UTC wall-clock stamp
  double uptime_ms = 0.0;     ///< trace-epoch-relative steady clock
  std::vector<Gauge> gauges;  ///< sorted by name
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // enum order
  std::vector<Histogram> histograms;                            // enum order

  /// rdc.metrics.v1 document (see file comment for determinism contract).
  std::string to_json() const;
  /// Prometheus text exposition (# TYPE/# HELP lines, rdc_ prefix,
  /// cumulative histogram buckets).
  std::string to_prometheus() const;
};

/// Process-wide gauge registry. All methods are thread-safe.
class MetricsRegistry {
 public:
  /// The global registry, with the process sampler gauges pre-registered.
  static MetricsRegistry& global();

  /// Registers a pull gauge: `sample` runs at every snapshot. Re-registering
  /// an existing name replaces its callback/metadata.
  void register_gauge(std::string name, std::string help, std::string unit,
                      std::function<double()> sample);

  /// Push-style gauge: stores the latest value (registering the name on
  /// first use with empty help/unit).
  void set_gauge(const std::string& name, double value);

  /// Captures gauges + counters + histograms now. `seq` is stamped 0;
  /// the snapshotter overwrites it with its write index.
  Snapshot snapshot() const;

 private:
  MetricsRegistry();

  struct Entry {
    std::string name, help, unit;
    std::function<double()> sample;  ///< null for push gauges
    double value = 0.0;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// MetricsRegistry::global().snapshot() — the one-liner callers want.
Snapshot metrics_snapshot();

/// Starts the background snapshotter if RDC_METRICS is set (idempotent;
/// safe to call from several entry points). Also enables counters so the
/// snapshots have a body. Harness entry points and Pipeline::run call
/// this; library users can call it directly.
void metrics_init_from_env();

/// Permanently disarms this process's metrics exposition: init/start
/// become no-ops. Called first thing in forked supervisor workers — the
/// parent owns the snapshot path, and the disable check deliberately runs
/// *before* any once_flag so a fork taken mid-initialization cannot
/// deadlock the child on an inherited locked flag.
void metrics_disable();

/// Programmatic snapshotter control (tests, daemons). interval_ms == 0
/// writes only the final snapshot at stop. Calling start while running
/// restarts with the new settings.
void start_metrics_snapshotter(const std::string& path, int interval_ms);

/// Stops the snapshotter thread after writing one final snapshot; no-op
/// when not running. The final write uses the same tmp+rename protocol,
/// so the last document on disk is always complete.
void stop_metrics_snapshotter();

/// Writes one immediate snapshot through the running snapshotter (seq
/// advanced, same tmp+rename path) without stopping it. The drain hook
/// for daemons: a graceful drain flushes the final counter state to disk
/// even though the process may linger (or be SIGKILLed) afterwards.
/// Returns false when no snapshotter is running.
bool flush_metrics_snapshot();

/// Serializes a snapshot to `path` via tmp+rename; false on I/O failure.
/// Chooses Prometheus text when the path ends in ".prom", JSON otherwise.
bool write_snapshot_file(const Snapshot& snapshot, const std::string& path);

}  // namespace rdc::obs
